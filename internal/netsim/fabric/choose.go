package fabric

import (
	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// nextHopIface decides the egress interface router cur uses for a packet
// to dst. This is where destination-based routing (and its violations),
// hot-potato egress selection, and load balancing live.
func (f *Fabric) nextHopIface(cur topology.RouterID, dst, src ipv4.Addr, hasOpts bool, c *walkCtx) (topology.IfaceID, bool) {
	topo := f.Topo
	r := topo.Routers[cur]
	curAS := r.AS

	// Resolve the AS-level decision.
	var nextAS topology.ASN = topology.None
	var target topology.RouterID = topology.None

	if g := f.anycastFor(dst); g != nil {
		rt := &g.Routes.Per[curAS]
		if rt.Site < 0 {
			return topology.None, false
		}
		// Tied-best routes (same local-pref, class, AS-path length) are
		// resolved per router by IGP distance — hot potato before
		// router-id, as in the real BGP decision process. This is what
		// lets one carrier's ingress routers reach different anycast
		// sites (§6.1).
		alt := f.pickAnycastAlt(cur, g, rt, dst, src, hasOpts, c)
		if alt.Next == g.Routes.Ann.Origin {
			// We are in the site's attachment AS: head for the site router.
			target = g.Sites[alt.Site].Router
		} else {
			nextAS = alt.Next
		}
	} else {
		dstAS, ok := f.dstAS(dst)
		if !ok {
			return topology.None, false
		}
		if dstAS == curAS {
			t, ok := f.localTarget(dst)
			if !ok {
				return topology.None, false
			}
			target = t
		} else {
			tr := f.Routing.TreeTo(dstAS)
			if tr.Class[curAS] == bgp.ClassNone {
				return topology.None, false
			}
			nextAS = tr.Next[curAS]
		}
	}

	if nextAS != topology.None {
		return f.egressToward(cur, nextAS, dst, src, hasOpts, c)
	}
	if target == cur {
		return topology.None, false // should have been delivered already
	}
	return f.intraStep(cur, target, dst, src, hasOpts, c)
}

// dstAS resolves the destination's AS: the operating AS for allocated
// addresses, the block owner otherwise (the packet is carried to the block
// owner and dropped there, like probing a dark address).
func (f *Fabric) dstAS(dst ipv4.Addr) (topology.ASN, bool) {
	return f.Topo.OwnerAS(dst)
}

// localTarget finds the router inside the destination AS that terminates
// dst: the owning router for infrastructure addresses, the access router
// for host addresses.
func (f *Fabric) localTarget(dst ipv4.Addr) (topology.RouterID, bool) {
	topo := f.Topo
	if o, ok := topo.Owner(dst); ok {
		if o.Kind == topology.OwnerHost {
			return topo.Hosts[o.Host].Router, true
		}
		return o.Router, true
	}
	return topology.None, false // dark address inside the block
}

// egressToward picks the router-level path toward neighbor AS nextAS:
// hot potato — the adjacency link whose border router is closest to cur —
// with deterministic tie-breaking (perturbed for DBR violators and load
// balancers).
func (f *Fabric) egressToward(cur topology.RouterID, nextAS topology.ASN, dst, src ipv4.Addr, hasOpts bool, c *walkCtx) (topology.IfaceID, bool) {
	topo := f.Topo
	r := topo.Routers[cur]
	nb := topo.ASes[r.AS].Neighbor(nextAS)
	if nb == nil || len(nb.Link) == 0 {
		return topology.None, false
	}
	type cand struct {
		link   topology.LinkID
		border topology.RouterID
		dist   int32
	}
	var cands []cand
	best := int32(1 << 30)
	for _, l := range nb.Link {
		if topo.Links[l].Down || f.faults.LinkFlapped(l, c.tUS) {
			continue
		}
		b := f.borderEnd(l, r.AS)
		d := int32(0)
		if b != cur {
			d = f.intra.dist(b, cur)
			if d < 0 {
				continue // unreachable (should not happen)
			}
		}
		cands = append(cands, cand{link: l, border: b, dist: d})
		if d < best {
			best = d
		}
	}
	if len(cands) == 0 {
		return topology.None, false
	}
	// Keep only nearest-equal candidates (hot potato), then tie-break.
	eq := cands[:0]
	var links []topology.LinkID
	for _, cd := range cands {
		if cd.dist == best {
			eq = append(eq, cd)
			links = append(links, cd.link)
		}
	}
	pick := f.pickLink(r, links, dst, src, hasOpts, c)
	sel := eq[0]
	for _, cd := range eq {
		if cd.link == pick {
			sel = cd
			break
		}
	}
	if sel.border == cur {
		return topo.IfaceOn(sel.link, cur), true
	}
	return f.intraStep(cur, sel.border, dst, src, hasOpts, c)
}

// pickAnycastAlt chooses among an AS's tied-best anycast routes by the
// current router's distance to each alternative's exit (IGP hot potato).
func (f *Fabric) pickAnycastAlt(cur topology.RouterID, g *AnycastGroup, rt *bgp.Route, dst, src ipv4.Addr, hasOpts bool, c *walkCtx) bgp.RouteAlt {
	primary := bgp.RouteAlt{Next: rt.Next, Site: rt.Site}
	if len(rt.Alts) < 2 {
		return primary
	}
	topo := f.Topo
	r := topo.Routers[cur]
	curAS := r.AS
	best := primary
	bestDist := int32(1 << 30)
	bestKey := uint64(0)
	for _, alt := range rt.Alts {
		// Distance from cur to this alternative's exit.
		d := int32(1 << 30)
		if alt.Next == g.Routes.Ann.Origin {
			sr := g.Sites[alt.Site].Router
			if topo.Routers[sr].AS == curAS {
				if sr == cur {
					d = 0
				} else if id := f.intra.dist(sr, cur); id >= 0 {
					d = id
				}
			}
		} else if nb := topo.ASes[curAS].Neighbor(alt.Next); nb != nil {
			for _, l := range nb.Link {
				if topo.Links[l].Down || f.faults.LinkFlapped(l, c.tUS) {
					continue
				}
				b := f.borderEnd(l, curAS)
				bd := int32(0)
				if b != cur {
					bd = f.intra.dist(b, cur)
					if bd < 0 {
						continue
					}
				}
				if bd < d {
					d = bd
				}
			}
		}
		key := mix64(f.seed, uint64(r.ID)<<32|uint64(uint32(alt.Next))^uint64(alt.Site)<<16)
		if d < bestDist || (d == bestDist && key > bestKey) {
			best, bestDist, bestKey = alt, d, key
		}
	}
	if bestDist == 1<<30 {
		return primary
	}
	return best
}

// borderEnd returns the end of link l inside AS asn.
func (f *Fabric) borderEnd(l topology.LinkID, asn topology.ASN) topology.RouterID {
	lk := &f.Topo.Links[l]
	r0 := f.Topo.Ifaces[lk.I0].Router
	if f.Topo.Routers[r0].AS == asn {
		return r0
	}
	return f.Topo.Ifaces[lk.I1].Router
}

// intraStep takes one hop toward target within cur's AS.
func (f *Fabric) intraStep(cur, target topology.RouterID, dst, src ipv4.Addr, hasOpts bool, c *walkCtx) (topology.IfaceID, bool) {
	cands := f.intra.nextCands(target, cur)
	if len(cands) == 0 {
		return topology.None, false
	}
	r := f.Topo.Routers[cur]
	link := f.pickLink(r, cands, dst, src, hasOpts, c)
	return f.Topo.IfaceOn(link, cur), true
}

// pick deterministically selects among equal-cost candidate links.
//
//   - Default routers break ties by a fixed per-link preference (like an
//     IGP's lowest-interface-ID rule): consistent across destinations and
//     directions, which is why intradomain paths are usually traversed
//     symmetrically (90% in the paper's Table 2 study).
//   - DBR violators additionally mix in (dst, src), so the same
//     destination can take different next hops for different sources
//     (Appx E).
//   - Per-packet load balancers mix the per-packet nonce for packets with
//     IP options (options packets are balanced randomly in the wild), and
//     the flow ID otherwise (per-flow, Paris-stable).
func (f *Fabric) pickLink(r *topology.Router, cands []topology.LinkID, dst, src ipv4.Addr, hasOpts bool, c *walkCtx) topology.LinkID {
	if len(cands) == 1 {
		return cands[0]
	}
	var extra uint64
	if r.DBRViolator {
		extra = mix64(uint64(uint32(dst)), uint64(src))
	}
	if r.PerPacketLB {
		if hasOpts {
			extra = mix64(extra, c.nonce)
		} else {
			extra = mix64(extra, mix64(c.flowID, uint64(uint32(dst))))
		}
	}
	best := cands[0]
	bestKey := uint64(0)
	for i, l := range cands {
		key := mix64(f.seed^extra, uint64(r.ID)<<32|uint64(uint32(l)))
		if i == 0 || key > bestKey {
			best, bestKey = l, key
		}
	}
	return best
}

func mix64(a, b uint64) uint64 {
	x := a ^ b*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
