package fabric

import (
	"fmt"
	"testing"

	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/faults"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// conservationWorkload injects an assortment of packets chosen to reach
// every terminal path of walk: plain pings, RR pings (option filtering,
// router RR policies), TTL-limited probes (time exceeded), spoofed
// sources, pings to router infrastructure addresses, and probes to dark
// addresses (carried to the block owner and dropped).
func conservationWorkload(f *Fabric, hosts []*topology.Host) {
	nonce := uint64(1)
	next := func() uint64 { nonce += 2; return nonce }
	tUS := int64(0)
	for i, h := range hosts {
		dst := hosts[(i+7)%len(hosts)]
		spoof := hosts[(i+3)%len(hosts)]
		// Plain ping and RR ping, host to host.
		f.Inject(h.Router, ipv4.BuildEchoRequest(h.Addr, dst.Addr, 1, 1, 64, 0, nil), tUS, 1, next())
		f.Inject(h.Router, ipv4.BuildEchoRequest(h.Addr, dst.Addr, 2, 1, 64, ipv4.RRSlots, nil), tUS, 1, next())
		// Timestamp ping (prespec on the destination).
		f.Inject(h.Router, ipv4.BuildEchoRequest(h.Addr, dst.Addr, 3, 1, 64, 0, []ipv4.Addr{dst.Addr}), tUS, 1, next())
		// TTL-limited probes: time-exceeded generation mid-path.
		for _, ttl := range []uint8{1, 3, 6} {
			f.Inject(h.Router, ipv4.BuildEchoRequest(h.Addr, dst.Addr, 4, uint16(ttl), ttl, 0, nil), tUS, 2, next())
		}
		// Spoofed RR: the reply routes to the spoofed source.
		f.Inject(h.Router, ipv4.BuildEchoRequest(spoof.Addr, dst.Addr, 5, 1, 64, ipv4.RRSlots, nil), tUS, 1, next())
		// Ping to router infrastructure (the destination's access router).
		f.Inject(h.Router, ipv4.BuildEchoRequest(h.Addr, f.Topo.Routers[dst.Router].Loopback, 6, 1, 64, ipv4.RRSlots, nil), tUS, 1, next())
		// Probe toward a (likely) dark address in the destination's block.
		f.Inject(h.Router, ipv4.BuildEchoRequest(h.Addr, dst.Addr+199, 7, 1, 64, 0, nil), tUS, 1, next())
		// Advance virtual time so epoch/flap windows vary across hosts.
		tUS += 333_000
	}
}

// TestPacketConservation asserts the fabric's accounting invariant —
// injected == delivered + dropped + absorbed — over random seeds, with
// and without an active fault plan. Every packetsDropped increment site
// (option filter, no next hop, hop exhaustion, unresponsive router,
// unresponsive TE source, plus the injected-fault drops) terminates a
// walk exactly once, so any double- or under-count breaks the sum.
func TestPacketConservation(t *testing.T) {
	plans := []*faults.Plan{
		nil,
		{},
		{Seed: 1, LinkLoss: 0.08},
		{Seed: 2, ICMPFrac: 0.6, ICMPPass: 0.3},
		{Seed: 3, FlapFrac: 0.25},
		{Seed: 4, LinkLoss: 0.03, ICMPFrac: 0.4, ICMPPass: 0.5, FlapFrac: 0.1},
	}
	for _, topoSeed := range []int64{5, 11, 23} {
		cfg := topology.DefaultConfig(300)
		cfg.Seed = topoSeed
		topo := topology.Generate(cfg)
		routing := bgp.NewRouting(topo, bgp.DefaultTieBreak(topoSeed), 64)

		var hosts []*topology.Host
		for hi := range topo.Hosts {
			hosts = append(hosts, &topo.Hosts[hi])
			if len(hosts) == 40 {
				break
			}
		}
		if len(hosts) < 10 {
			t.Fatalf("seed %d: too few hosts", topoSeed)
		}

		for pi, plan := range plans {
			plan := plan
			if plan != nil && len(plan.Blackouts) == 0 && plan.Enabled() {
				// Rebuild with blackout windows added so the host-delivery
				// drop path is exercised too (a fresh Plan, not a copy: the
				// struct embeds atomic counters).
				plan = &faults.Plan{
					Seed: plan.Seed, LinkLoss: plan.LinkLoss,
					ICMPFrac: plan.ICMPFrac, ICMPPass: plan.ICMPPass,
					FlapFrac: plan.FlapFrac,
					Blackouts: []faults.Blackout{
						{Addr: hosts[1].Addr, FromUS: 0, ToUS: 0},
						{Addr: hosts[5].Addr, FromUS: 100_000, ToUS: 2_000_000},
					},
				}
			}
			t.Run(fmt.Sprintf("topo%d/plan%d", topoSeed, pi), func(t *testing.T) {
				f := New(topo, routing, topoSeed)
				f.SetFaults(plan)
				conservationWorkload(f, hosts)
				inj, del, drop, abs := f.PacketsInjected(), f.PacketsDelivered(), f.PacketsDropped(), f.PacketsAbsorbed()
				if inj == 0 {
					t.Fatal("workload injected nothing")
				}
				if inj != del+drop+abs {
					t.Fatalf("conservation violated: injected=%d != delivered=%d + dropped=%d + absorbed=%d (diff %d)",
						inj, del, drop, abs, int64(inj)-int64(del+drop+abs))
				}
				if plan.Enabled() && plan.Total() == 0 {
					t.Error("fault plan enabled but injected nothing")
				}
			})
		}
	}
}

// TestConservationCleanRun checks the invariant plus positive deliveries
// on a fault-free fabric: everything injected must land somewhere.
func TestConservationCleanRun(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 0, differentAS(src))
	f.Inject(src.Router, ipv4.BuildEchoRequest(src.Addr, dst.Addr, 1, 1, 64, ipv4.RRSlots, nil), 0, 1, 1)
	inj, del, drop, abs := f.PacketsInjected(), f.PacketsDelivered(), f.PacketsDropped(), f.PacketsAbsorbed()
	if inj != del+drop+abs {
		t.Fatalf("conservation violated: %d != %d+%d+%d", inj, del, drop, abs)
	}
	if del == 0 {
		t.Fatal("responsive host pair delivered nothing")
	}
}
