package fabric

import (
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// This file provides ground-truth path extraction: the router-level path a
// plain (optionless) packet takes, used by the evaluation harness to score
// reverse traceroutes against the true paths, and by experiments that need
// "the real reverse path" without the cost of a packet walk.

// ForwardRouterPath returns the routers a plain packet from src injected
// at router at traverses toward dst, inclusive of the starting router and
// the terminating router. flowID fixes the per-flow load-balancing key.
// Returns nil if the packet would be dropped before termination.
func (f *Fabric) ForwardRouterPath(at topology.RouterID, dst, src ipv4.Addr, flowID uint64) []topology.RouterID {
	topo := f.Topo
	c := &walkCtx{res: &Result{}, flowID: flowID}
	cur := at
	path := make([]topology.RouterID, 0, 16)
	for hops := 0; hops < MaxHops; hops++ {
		path = append(path, cur)
		if owner, ok := topo.Owner(dst); ok && owner.Kind != topology.OwnerHost && owner.Router == cur {
			return path
		}
		if h, ok := topo.HostOf(dst); ok && h.Router == cur {
			return path
		}
		if g := f.anycastFor(dst); g != nil && f.anycastSiteAt(g, cur) >= 0 {
			return path
		}
		next, ok := f.nextHopIface(cur, dst, src, false, c)
		if !ok {
			return nil
		}
		cur, _ = topo.LinkOtherEnd(topo.Ifaces[next].Link, cur)
	}
	return nil
}

// ASPath collapses a router path into its AS path (consecutive
// duplicates removed).
func (f *Fabric) ASPath(routers []topology.RouterID) []topology.ASN {
	var out []topology.ASN
	for _, r := range routers {
		asn := f.Topo.Routers[r].AS
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}

// InvalidateRoutes drops all cached forwarding state. The dynamics module
// calls this after changing link state or tie-breaks.
func (f *Fabric) InvalidateRoutes() {
	f.Routing.Invalidate()
	f.intra.invalidate()
}

// RouterFor returns the router a measurement agent at host h injects at.
func (f *Fabric) RouterFor(h topology.HostID) topology.RouterID {
	return f.Topo.Hosts[h].Router
}
