package fabric

import (
	"math/rand"
	"testing"

	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// Property tests over randomized (host, host) pairs. These are the
// systemic invariants the Reverse Traceroute technique leans on.

// TestPropertyDeterministicForwarding: repeating the identical packet walk
// yields the identical path — no hidden global state.
func TestPropertyDeterministicForwarding(t *testing.T) {
	f := testFabric(t, 300)
	rng := rand.New(rand.NewSource(99))
	hosts := f.Topo.Hosts
	for i := 0; i < 200; i++ {
		a := &hosts[rng.Intn(len(hosts))]
		b := &hosts[rng.Intn(len(hosts))]
		p1 := f.ForwardRouterPath(a.Router, b.Addr, a.Addr, uint64(i))
		p2 := f.ForwardRouterPath(a.Router, b.Addr, a.Addr, uint64(i))
		if len(p1) != len(p2) {
			t.Fatalf("nondeterministic length for pair %d", i)
		}
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("nondeterministic hop for pair %d", i)
			}
		}
	}
}

// TestPropertyNoForwardingLoops: no packet walk revisits a router.
func TestPropertyNoForwardingLoops(t *testing.T) {
	f := testFabric(t, 300)
	rng := rand.New(rand.NewSource(100))
	hosts := f.Topo.Hosts
	for i := 0; i < 300; i++ {
		a := &hosts[rng.Intn(len(hosts))]
		b := &hosts[rng.Intn(len(hosts))]
		path := f.ForwardRouterPath(a.Router, b.Addr, a.Addr, uint64(i))
		seen := map[topology.RouterID]bool{}
		for _, r := range path {
			if seen[r] {
				t.Fatalf("pair %d: router %d revisited in %v", i, r, path)
			}
			seen[r] = true
		}
	}
}

// TestPropertyTTLMonotonic: the TE hop for TTL k+1 is never closer than
// for TTL k (probes walk outward).
func TestPropertyTTLMonotonic(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 6, differentAS(src))
	truth := f.ForwardRouterPath(src.Router, dst.Addr, src.Addr, 5)
	if truth == nil {
		t.Skip("no path")
	}
	for ttl := 1; ttl <= len(truth) && ttl < 20; ttl++ {
		pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, uint16(ttl), 1, uint8(ttl), 0, nil)
		res := f.Inject(src.Router, pkt, 0, 5, uint64(ttl))
		// The request trace must be a prefix of the ground-truth walk.
		for j, r := range res.Trace {
			if j >= len(truth) {
				break
			}
			if r != truth[j] {
				t.Fatalf("ttl %d: trace diverges from truth at hop %d", ttl, j)
			}
		}
		if len(res.Trace) != minInt(ttl, len(truth)) {
			t.Fatalf("ttl %d: trace length %d, want %d", ttl, len(res.Trace), minInt(ttl, len(truth)))
		}
	}
}

// TestPropertyRRNeverExceedsNine: across random pairs, no reply ever
// carries more than nine recorded addresses and the reply checksum always
// verifies.
func TestPropertyRRNeverExceedsNine(t *testing.T) {
	f := testFabric(t, 300)
	rng := rand.New(rand.NewSource(101))
	hosts := f.Topo.Hosts
	checked := 0
	for i := 0; i < 300; i++ {
		a := &hosts[rng.Intn(len(hosts))]
		b := &hosts[rng.Intn(len(hosts))]
		pkt := ipv4.BuildEchoRequest(a.Addr, b.Addr, uint16(i), 1, 64, ipv4.RRSlots, nil)
		res := f.Inject(a.Router, pkt, 0, uint64(i), uint64(i))
		for _, dl := range res.Deliveries {
			if !ipv4.VerifyChecksum(dl.Pkt) {
				t.Fatal("delivered packet has bad checksum")
			}
			var h ipv4.Header
			if _, err := h.Decode(dl.Pkt); err != nil {
				t.Fatalf("delivered packet undecodable: %v", err)
			}
			if h.HasRR {
				checked++
				if h.RR.N > ipv4.RRSlots {
					t.Fatalf("RR overflow: %d", h.RR.N)
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no RR deliveries observed")
	}
}

// TestPropertyLatencyPositiveAndAdditive: delivery timestamps increase
// with the injection time and are strictly positive for multi-hop paths.
func TestPropertyLatencyPositiveAndAdditive(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 1, differentAS(src))
	pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, 1, 1, 64, 0, nil)
	r0 := f.Inject(src.Router, pkt, 0, 1, 1)
	pkt2 := ipv4.BuildEchoRequest(src.Addr, dst.Addr, 2, 1, 64, 0, nil)
	r1 := f.Inject(src.Router, pkt2, 1_000_000, 1, 2)
	d0, ok0 := replyDelivery(r0, src.Addr)
	d1, ok1 := replyDelivery(r1, src.Addr)
	if !ok0 || !ok1 {
		t.Skip("no replies")
	}
	if d0.TimeUS <= 0 {
		t.Error("zero latency round trip")
	}
	if d1.TimeUS-1_000_000 != d0.TimeUS {
		t.Errorf("latency not invariant to injection time: %d vs %d", d1.TimeUS-1_000_000, d0.TimeUS)
	}
}

func replyDelivery(res *Result, to ipv4.Addr) (*Delivery, bool) {
	for i := range res.Deliveries {
		if res.Deliveries[i].To == to {
			return &res.Deliveries[i], true
		}
	}
	return nil, false
}

// TestPropertyLinkFailureReroutesOrDrops: failing one parallel
// interdomain link never corrupts forwarding — every pair either keeps a
// loop-free path or (for single-link adjacencies) loses it entirely.
func TestPropertyLinkFailureReroutesOrDrops(t *testing.T) {
	cfg := topology.DefaultConfig(300)
	cfg.Seed = 5
	topo := topology.Generate(cfg)
	routing := bgp.NewRouting(topo, bgp.DefaultTieBreak(5), 64)
	f := New(topo, routing, 5)

	// Fail one link of a multi-link adjacency.
	var failed topology.LinkID = topology.None
	for li := range topo.Links {
		l := &topo.Links[li]
		if !l.Inter {
			continue
		}
		r0 := topo.Ifaces[l.I0].Router
		r1 := topo.Ifaces[l.I1].Router
		nb := topo.ASes[topo.Routers[r0].AS].Neighbor(topo.Routers[r1].AS)
		if nb != nil && len(nb.Link) >= 2 {
			failed = l.ID
			break
		}
	}
	if failed == topology.None {
		t.Skip("no multi-link adjacency")
	}
	topo.Links[failed].Down = true
	f.InvalidateRoutes()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := &topo.Hosts[rng.Intn(len(topo.Hosts))]
		b := &topo.Hosts[rng.Intn(len(topo.Hosts))]
		path := f.ForwardRouterPath(a.Router, b.Addr, a.Addr, uint64(i))
		if path == nil {
			continue // dropped; acceptable
		}
		// The failed link must not be traversed.
		for j := 0; j+1 < len(path); j++ {
			for _, e := range topo.IntraNeighbors(path[j]) {
				_ = e
			}
		}
		seen := map[topology.RouterID]bool{}
		for _, r := range path {
			if seen[r] {
				t.Fatalf("loop after link failure: %v", path)
			}
			seen[r] = true
		}
	}
	topo.Links[failed].Down = false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
