package fabric

import (
	"testing"

	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

func testFabric(t testing.TB, n int) *Fabric {
	t.Helper()
	cfg := topology.DefaultConfig(n)
	cfg.Seed = 5
	topo := topology.Generate(cfg)
	routing := bgp.NewRouting(topo, bgp.DefaultTieBreak(5), 64)
	return New(topo, routing, 5)
}

// pickHost returns the i'th host satisfying pred.
func pickHost(f *Fabric, i int, pred func(*topology.Host) bool) *topology.Host {
	for hi := range f.Topo.Hosts {
		h := &f.Topo.Hosts[hi]
		if pred(h) {
			if i == 0 {
				return h
			}
			i--
		}
	}
	return nil
}

func respHost(h *topology.Host) bool { return h.PingResponsive && h.RRResponsive && h.Stamps }

func differentAS(a *topology.Host) func(*topology.Host) bool {
	return func(h *topology.Host) bool { return respHost(h) && h.AS != a.AS }
}

func TestPingRoundTrip(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 0, differentAS(src))
	pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, 1, 1, 64, 0, nil)
	res := f.Inject(src.Router, pkt, 0, 1, 1)
	if !res.ReachedDst {
		t.Fatal("request did not reach destination")
	}
	var reply *Delivery
	for i := range res.Deliveries {
		if res.Deliveries[i].To == src.Addr {
			reply = &res.Deliveries[i]
		}
	}
	if reply == nil {
		t.Fatal("no echo reply delivered to source")
	}
	var h ipv4.Header
	payload, err := h.Decode(reply.Pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != dst.Addr || h.Dst != src.Addr {
		t.Fatalf("reply addressing %s -> %s", h.Src, h.Dst)
	}
	var m ipv4.ICMP
	if m.Decode(payload) != nil || m.Type != ipv4.ICMPEchoReply {
		t.Fatal("not an echo reply")
	}
	if reply.TimeUS <= 0 {
		t.Error("no latency accumulated")
	}
}

func TestUnresponsiveHostSilent(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 0, func(h *topology.Host) bool { return !h.PingResponsive && h.AS != src.AS })
	if dst == nil {
		t.Skip("no unresponsive host")
	}
	pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, 1, 1, 64, 0, nil)
	res := f.Inject(src.Router, pkt, 0, 1, 1)
	for _, d := range res.Deliveries {
		if d.To == src.Addr {
			t.Fatal("unresponsive host replied")
		}
	}
}

// TestTracerouteWalksForwardPath issues TTL-limited probes and checks the
// time-exceeded sources come from successive routers of the true path.
func TestTracerouteWalksForwardPath(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 2, differentAS(src))
	truth := f.ForwardRouterPath(src.Router, dst.Addr, src.Addr, 7)
	if truth == nil {
		t.Fatal("no ground truth path")
	}
	for ttl := 1; ttl < len(truth); ttl++ {
		pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, uint16(ttl), 1, uint8(ttl), 0, nil)
		res := f.Inject(src.Router, pkt, 0, 7, uint64(ttl))
		var te *Delivery
		for i := range res.Deliveries {
			if res.Deliveries[i].To == src.Addr {
				te = &res.Deliveries[i]
			}
		}
		if te == nil {
			continue // unresponsive router: a "*" hop
		}
		var h ipv4.Header
		payload, err := h.Decode(te.Pkt)
		if err != nil {
			t.Fatal(err)
		}
		var m ipv4.ICMP
		if m.Decode(payload) != nil {
			t.Fatal("bad ICMP")
		}
		if m.Type == ipv4.ICMPEchoReply {
			break // reached destination early (short path)
		}
		if m.Type != ipv4.ICMPTimeExceeded {
			t.Fatalf("ttl %d: type %d", ttl, m.Type)
		}
		hopRouter, ok := f.Topo.RouterOf(h.Src)
		if !ok {
			t.Fatalf("ttl %d: TE source %s unknown", ttl, h.Src)
		}
		// TTL k expires at the k'th router of the path (the injection
		// router is hop 1: it decrements first).
		if want := truth[ttl-1]; hopRouter != want {
			t.Fatalf("ttl %d: TE from router %d, want %d", ttl, hopRouter, want)
		}
	}
}

func TestRecordRouteStampsAndReverseAccumulates(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	// Find a destination whose reply carries both forward and reverse hops.
	for i := 0; i < 50; i++ {
		dst := pickHost(f, i, differentAS(src))
		if dst == nil {
			break
		}
		pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, 9, 1, 64, ipv4.RRSlots, nil)
		res := f.Inject(src.Router, pkt, 0, 9, uint64(i))
		var reply *Delivery
		for di := range res.Deliveries {
			if res.Deliveries[di].To == src.Addr {
				reply = &res.Deliveries[di]
			}
		}
		if reply == nil {
			continue
		}
		var h ipv4.Header
		if _, err := h.Decode(reply.Pkt); err != nil {
			t.Fatal(err)
		}
		if !h.HasRR {
			t.Fatal("reply lost RR option")
		}
		if h.RR.N == 0 {
			t.Fatal("no RR stamps at all")
		}
		if h.RR.N > ipv4.RRSlots {
			t.Fatalf("RR overflow: %d", h.RR.N)
		}
		// The destination's own stamp should appear if it stamps.
		found := false
		for _, a := range h.RR.Recorded() {
			if a == dst.Addr {
				found = true
			}
		}
		if dst.Stamps && !found && !h.RR.Full() {
			t.Errorf("destination %s did not stamp (rr=%v)", dst.Addr, h.RR.Recorded())
		}
		return
	}
	t.Skip("no suitable RR destination found")
}

// TestSpoofedReplyArrivesAtSpoofedSource is Insight 1.3: a VP sends to D
// spoofing S; the reply must be delivered at S.
func TestSpoofedReplyArrivesAtSpoofedSource(t *testing.T) {
	f := testFabric(t, 300)
	s := pickHost(f, 0, respHost)
	vp := pickHost(f, 1, differentAS(s))
	dst := pickHost(f, 3, func(h *topology.Host) bool {
		return respHost(h) && h.AS != s.AS && h.AS != vp.AS
	})
	pkt := ipv4.BuildEchoRequest(s.Addr, dst.Addr, 21, 1, 64, ipv4.RRSlots, nil)
	res := f.Inject(vp.Router, pkt, 0, 21, 1) // injected at the VP, src = S
	got := false
	for _, d := range res.Deliveries {
		if d.To == s.Addr {
			got = true
		}
		if d.To == vp.Addr {
			t.Error("reply went to the VP, not the spoofed source")
		}
	}
	if !got {
		t.Fatal("reply not delivered at spoofed source")
	}
}

// TestDestinationBasedRouting: for non-violator routers the forward path
// depends only on the destination, not the source.
func TestDestinationBasedRouting(t *testing.T) {
	f := testFabric(t, 300)
	dst := pickHost(f, 5, respHost)
	srcA := pickHost(f, 0, respHost)
	srcB := pickHost(f, 1, func(h *topology.Host) bool { return respHost(h) && h.AS != srcA.AS })
	pa := f.ForwardRouterPath(srcA.Router, dst.Addr, srcA.Addr, 1)
	pb := f.ForwardRouterPath(srcA.Router, dst.Addr, srcB.Addr, 2)
	if pa == nil || pb == nil {
		t.Skip("path dropped")
	}
	// Walk both and find the first divergence; it must be at a violator
	// or per-flow LB router.
	for i := 0; i < len(pa) && i < len(pb); i++ {
		if pa[i] != pb[i] {
			r := f.Topo.Routers[pa[i-1]]
			if !r.DBRViolator && !r.PerPacketLB {
				t.Fatalf("paths diverge after non-violator router %d", pa[i-1])
			}
			return
		}
	}
}

// TestParisStability: the same flow ID gives the same path repeatedly.
func TestParisStability(t *testing.T) {
	f := testFabric(t, 300)
	dst := pickHost(f, 7, respHost)
	src := pickHost(f, 0, respHost)
	p1 := f.ForwardRouterPath(src.Router, dst.Addr, src.Addr, 42)
	p2 := f.ForwardRouterPath(src.Router, dst.Addr, src.Addr, 42)
	if len(p1) != len(p2) {
		t.Fatal("path length changed for same flow")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("path changed for same flow")
		}
	}
}

func TestASPathCollapse(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 4, differentAS(src))
	rp := f.ForwardRouterPath(src.Router, dst.Addr, src.Addr, 3)
	if rp == nil {
		t.Skip("dropped")
	}
	ap := f.ASPath(rp)
	if len(ap) < 2 {
		t.Fatalf("AS path too short: %v", ap)
	}
	if ap[0] != src.AS || ap[len(ap)-1] != dst.AS {
		t.Fatalf("AS path endpoints %v (want %d..%d)", ap, src.AS, dst.AS)
	}
	for i := 1; i < len(ap); i++ {
		if ap[i] == ap[i-1] {
			t.Fatal("consecutive duplicate in AS path")
		}
	}
}

// TestValleyFreeForwarding: actual forwarded AS paths obey Gao-Rexford.
func TestValleyFreeForwarding(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	for i := 0; i < 30; i++ {
		dst := pickHost(f, i*3, differentAS(src))
		if dst == nil {
			break
		}
		rp := f.ForwardRouterPath(src.Router, dst.Addr, src.Addr, uint64(i))
		if rp == nil {
			continue
		}
		ap := f.ASPath(rp)
		phase := 0
		for j := 0; j+1 < len(ap); j++ {
			nb := f.Topo.ASes[ap[j]].Neighbor(ap[j+1])
			if nb == nil {
				t.Fatalf("non-adjacent AS hop %v", ap)
			}
			switch nb.Rel {
			case topology.RelProvider:
				if phase != 0 {
					t.Fatalf("valley in %v", ap)
				}
			case topology.RelPeer:
				if phase != 0 {
					t.Fatalf("double peer in %v", ap)
				}
				phase = 1
			case topology.RelCustomer:
				phase = 2
			}
		}
	}
}

func TestAnycastCatchmentDelivery(t *testing.T) {
	topoCfg := topology.DefaultConfig(300)
	topoCfg.Seed = 5
	topo := topology.Generate(topoCfg)
	routing := bgp.NewRouting(topo, bgp.DefaultTieBreak(5), 64)
	f := New(topo, routing, 5)

	transits := topo.ASesByTier(topology.Transit)
	viaA, viaB := transits[0], transits[len(transits)-1]
	origin := topology.ASN(len(topo.ASes))
	ann := &bgp.Announcement{
		Prefix: ipv4.MustParsePrefix("203.0.113.0/24"),
		Origin: origin,
		Sites: []bgp.AnnSite{
			{Name: "A", Neighbors: []bgp.AnnNeighbor{{ASN: viaA, Rel: topology.RelCustomer}}},
			{Name: "B", Neighbors: []bgp.AnnNeighbor{{ASN: viaB, Rel: topology.RelCustomer}}},
		},
	}
	routes := bgp.Compute(topo, ann, bgp.DefaultTieBreak(5), routing.Pref())
	svc := ipv4.MustParseAddr("203.0.113.1")
	f.AddAnycast(&AnycastGroup{
		Prefix:      ann.Prefix,
		ServiceAddr: svc,
		Routes:      routes,
		Sites: []AnycastSite{
			{Name: "A", Via: viaA, Router: topo.ASes[viaA].Routers[0]},
			{Name: "B", Via: viaB, Router: topo.ASes[viaB].Routers[0]},
		},
	})

	delivered := map[int]int{}
	for i := 0; i < 40; i++ {
		src := pickHost(f, i*5, respHost)
		if src == nil {
			break
		}
		pkt := ipv4.BuildEchoRequest(src.Addr, svc, uint16(i), 1, 64, 0, nil)
		res := f.Inject(src.Router, pkt, 0, uint64(i), uint64(i))
		for _, d := range res.Deliveries {
			if d.To == svc {
				if d.Site < 0 {
					t.Fatal("anycast delivery without site")
				}
				// Deliveries must land at the site terminating the
				// data-plane path (per-router hot potato may diverge
				// from the per-AS primary BGP selection).
				rp := f.ForwardRouterPath(src.Router, svc, src.Addr, uint64(i))
				if len(rp) == 0 {
					t.Fatal("no data-plane path for delivered packet")
				}
				want := -1
				for gi, gs := range f.anycast[0].Sites {
					if gs.Router == rp[len(rp)-1] {
						want = gi
					}
				}
				if d.Site != want {
					t.Fatalf("host in AS%d delivered to site %d, data plane says %d", src.AS, d.Site, want)
				}
				delivered[d.Site]++
			}
		}
	}
	if len(delivered) < 2 {
		t.Logf("catchments: %v (only one site exercised by sample)", delivered)
	}
	if len(delivered) == 0 {
		t.Fatal("no anycast deliveries at all")
	}
}

func TestOptionFilteringAS(t *testing.T) {
	f := testFabric(t, 300)
	// Find a filtering AS with a host.
	var dst *topology.Host
	for hi := range f.Topo.Hosts {
		h := &f.Topo.Hosts[hi]
		if f.Topo.ASes[h.AS].FiltersOptions && h.PingResponsive && h.RRResponsive {
			dst = h
			break
		}
	}
	if dst == nil {
		t.Skip("no filtering AS with responsive host")
	}
	src := pickHost(f, 0, func(h *topology.Host) bool { return respHost(h) && h.AS != dst.AS })
	pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, 1, 1, 64, ipv4.RRSlots, nil)
	res := f.Inject(src.Router, pkt, 0, 1, 1)
	for _, d := range res.Deliveries {
		if d.To == src.Addr {
			t.Fatal("RR packet crossed an option-filtering AS")
		}
	}
	// Plain ping still works.
	pkt = ipv4.BuildEchoRequest(src.Addr, dst.Addr, 1, 1, 64, 0, nil)
	res = f.Inject(src.Router, pkt, 0, 1, 2)
	ok := false
	for _, d := range res.Deliveries {
		if d.To == src.Addr {
			ok = true
		}
	}
	if !ok {
		t.Fatal("plain ping also dropped")
	}
}

func TestRRPingToRouterInterface(t *testing.T) {
	f := testFabric(t, 300)
	src := pickHost(f, 0, respHost)
	// Probe a responsive router interface in another AS.
	var target ipv4.Addr
	for ii := range f.Topo.Ifaces {
		ifc := &f.Topo.Ifaces[ii]
		r := f.Topo.Routers[ifc.Router]
		if r.AS != src.AS && r.RespondsToPing && r.RespondsToOptions &&
			!f.Topo.ASes[r.AS].FiltersOptions {
			target = ifc.Addr
			break
		}
	}
	if target.IsZero() {
		t.Skip("no responsive router iface")
	}
	pkt := ipv4.BuildEchoRequest(src.Addr, target, 2, 1, 64, ipv4.RRSlots, nil)
	res := f.Inject(src.Router, pkt, 0, 2, 1)
	found := false
	for _, d := range res.Deliveries {
		if d.To == src.Addr {
			found = true
			var h ipv4.Header
			if _, err := h.Decode(d.Pkt); err != nil {
				t.Fatal(err)
			}
			if h.Src != target {
				t.Errorf("reply source %s != probed %s", h.Src, target)
			}
		}
	}
	if !found {
		// Options may have been filtered in transit; that's legitimate,
		// but at least the request should have been traceable.
		if len(res.Trace) == 0 {
			t.Fatal("no trace at all")
		}
	}
}

func BenchmarkInjectPingCrossAS(b *testing.B) {
	f := testFabric(b, 300)
	src := pickHost(f, 0, respHost)
	dst := pickHost(f, 3, differentAS(src))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := ipv4.BuildEchoRequest(src.Addr, dst.Addr, uint16(i), 1, 64, ipv4.RRSlots, nil)
		f.Inject(src.Router, pkt, 0, uint64(i), uint64(i))
	}
}
