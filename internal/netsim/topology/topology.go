// Package topology generates and represents the simulated Internet the
// Reverse Traceroute system runs over: an AS-level graph with
// customer/provider/peer relationships, per-AS router-level topologies,
// interface and prefix addressing, and a host population with configurable
// responsiveness.
//
// The generated Internet has the structural properties the paper's results
// depend on: a hierarchy with a tier-1 clique at the top and stubs at the
// bottom (so Gao–Rexford routing produces realistic, frequently asymmetric
// paths), widely-peering NRENs with cold-potato behaviour (the Fig 8b
// outliers), a flattened core with colocation-style ASes that host vantage
// points close to many networks (Insight 1.7), and routers whose Record
// Route stamping policies vary (egress, ingress, loopback, private, none —
// the §4.3 measurement artifacts).
package topology

import (
	"fmt"

	"revtr/internal/netsim/ipv4"
)

// ASN identifies an autonomous system. ASNs are dense indices starting at 0.
type ASN int32

// RouterID identifies a router globally.
type RouterID int32

// IfaceID identifies a router interface globally.
type IfaceID int32

// HostID identifies an end host globally.
type HostID int32

// LinkID identifies a router-level link globally.
type LinkID int32

// None is the sentinel for absent router/interface/link references.
const None = -1

// Tier classifies an AS's role in the hierarchy.
type Tier uint8

const (
	// Tier1 ASes form a clique of peers at the top of the hierarchy and
	// have no providers.
	Tier1 Tier = iota
	// Transit ASes buy from providers and sell to customers.
	Transit
	// Colo ASes are well-connected transit networks at colocation
	// facilities; vantage points are hosted here (Insight 1.7).
	Colo
	// NREN ASes are research networks: few customers, very wide peering,
	// multi-AS cold-potato routing (§6.2).
	NREN
	// Stub ASes originate prefixes and have no customers.
	Stub
)

func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	case Colo:
		return "colo"
	case NREN:
		return "nren"
	case Stub:
		return "stub"
	}
	return "unknown"
}

// Rel is the business relationship an AS has with a neighbor, from the
// AS's own perspective.
type Rel int8

const (
	// RelCustomer means the neighbor is my customer (I am its provider).
	RelCustomer Rel = iota
	// RelPeer means a settlement-free peer.
	RelPeer
	// RelProvider means the neighbor is my provider (I am its customer).
	RelProvider
)

func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	}
	return "unknown"
}

// Invert returns the relationship from the neighbor's perspective.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	}
	return RelPeer
}

// Neighbor is an AS-level adjacency.
type Neighbor struct {
	ASN  ASN
	Rel  Rel      // from the owning AS's perspective
	Link []LinkID // router-level links realizing the adjacency
}

// AS is an autonomous system.
type AS struct {
	ASN       ASN
	Tier      Tier
	Block     ipv4.Prefix // the /16 from which all of the AS's addresses come
	Neighbors []Neighbor
	Routers   []RouterID
	Borders   []RouterID
	Prefixes  []ipv4.Prefix // announced destination prefixes
	Hosts     []HostID

	// FiltersOptions drops transiting packets that carry IP options, a
	// behaviour observed in a minority of real networks.
	FiltersOptions bool
	// AllowsSpoofing permits hosts within the AS to emit packets with
	// forged sources. Vantage points can only spoof from such ASes.
	AllowsSpoofing bool

	// ConeSize is the customer cone size (number of ASes reachable via
	// customer links, including self), as in CAIDA's dataset.
	ConeSize int

	// Pos is the AS's position on a unit square — a coarse geography.
	// Customers cluster near their first provider, so latency (which
	// scales with distance on interdomain links) exhibits regional
	// structure, and anycast traffic engineering has real "far" and
	// "near" sites (§6.1).
	Pos [2]float64
}

// Neighbor returns the adjacency with asn, or nil.
func (a *AS) Neighbor(asn ASN) *Neighbor {
	for i := range a.Neighbors {
		if a.Neighbors[i].ASN == asn {
			return &a.Neighbors[i]
		}
	}
	return nil
}

// RouterRole classifies a router within its AS.
type RouterRole uint8

const (
	// RoleCore routers form the AS backbone.
	RoleCore RouterRole = iota
	// RoleBorder routers terminate interdomain links.
	RoleBorder
	// RoleAccess routers attach end hosts.
	RoleAccess
)

// StampPolicy is what a router writes into a Record Route slot.
type StampPolicy uint8

const (
	// StampEgress records the outgoing interface address — the classic
	// RFC 791 behaviour and the reason RR hops differ from traceroute
	// hops (Fig 3).
	StampEgress StampPolicy = iota
	// StampIngress records the incoming interface address.
	StampIngress
	// StampLoopback records the router's loopback address.
	StampLoopback
	// StampPrivate records an RFC 1918 address, producing unmappable hops
	// (§5.2.2).
	StampPrivate
	// StampNone forwards RR packets without stamping, hiding the router
	// (Appx C's non-stamping case).
	StampNone
)

// Router is a simulated router.
type Router struct {
	ID       RouterID
	AS       ASN
	Role     RouterRole
	Loopback ipv4.Addr
	Ifaces   []IfaceID

	Stamp StampPolicy
	// PrivateAddr is the address stamped under StampPrivate.
	PrivateAddr ipv4.Addr

	// RespondsToPing: answers ICMP echo addressed to it.
	RespondsToPing bool
	// RespondsToOptions: answers echo requests that carry IP options.
	// Real routers frequently answer plain pings but drop option packets.
	RespondsToOptions bool
	// SNMPv3 responds to unsolicited SNMPv3 with a router identifier,
	// providing reliable alias ground truth to the measurer (§4.4).
	SNMPv3 bool
	// DBRViolator routers choose next hops using the packet source as
	// well as the destination, violating destination-based routing
	// (Appx E).
	DBRViolator bool
	// PerPacketLB routers balance packets with IP options randomly
	// rather than per flow (Appx E, Fig 10).
	PerPacketLB bool
}

// Iface is a router interface.
type Iface struct {
	ID     IfaceID
	Router RouterID
	Addr   ipv4.Addr
	Link   LinkID // None for loopback-style stub interfaces
}

// Link is a point-to-point connection between two interfaces.
type Link struct {
	ID        LinkID
	I0, I1    IfaceID
	LatencyUS int32
	Inter     bool // interdomain
	Down      bool // set by the dynamics module
}

// Host is an end host in an announced prefix.
type Host struct {
	ID     HostID
	Addr   ipv4.Addr
	Router RouterID // access router it hangs off
	AS     ASN

	PingResponsive bool
	// RRResponsive: answers echo requests carrying IP options. The paper
	// finds 78% of ping-responsive destinations do (Insight 1.2).
	RRResponsive bool
	// Stamps: whether the host records its own address in the RR option
	// when replying. Non-stamping destinations trigger the Appendix C
	// heuristics.
	Stamps bool
}

// OwnerKind says what an address belongs to.
type OwnerKind uint8

const (
	// OwnerIface is a router interface address.
	OwnerIface OwnerKind = iota
	// OwnerLoopback is a router loopback address.
	OwnerLoopback
	// OwnerHost is an end host address.
	OwnerHost
)

// AddrOwner resolves an address to its owner.
type AddrOwner struct {
	Kind   OwnerKind
	Router RouterID // valid for OwnerIface and OwnerLoopback
	Iface  IfaceID  // valid for OwnerIface
	Host   HostID   // valid for OwnerHost
}

// Topology is a complete generated Internet.
type Topology struct {
	Cfg     Config
	ASes    []*AS
	Routers []*Router
	Ifaces  []Iface
	Links   []Link
	Hosts   []Host

	byAddr    map[ipv4.Addr]AddrOwner
	blockByHi map[uint32]ASN // /16 block high bits -> owning AS
	// intraAdj[r] lists (neighbor router, link) pairs within r's AS.
	intraAdj [][]intraEdge
}

type intraEdge struct {
	To   RouterID
	Link LinkID
}

// AS returns the AS with the given number.
func (t *Topology) AS(asn ASN) *AS { return t.ASes[asn] }

// Router returns the router with the given ID.
func (t *Topology) Router(id RouterID) *Router { return t.Routers[id] }

// Owner resolves an address to its owner.
func (t *Topology) Owner(a ipv4.Addr) (AddrOwner, bool) {
	o, ok := t.byAddr[a]
	return o, ok
}

// OwnerAS maps an address to the AS that truly operates it (ground truth:
// the AS of the owning router or host). Private addresses have no owner.
// Note this can differ from BlockAS for interdomain point-to-point links,
// whose /30 is allocated from one side's block — the border-router mapping
// ambiguity that bdrmapit exists to resolve (Appx B.2).
func (t *Topology) OwnerAS(a ipv4.Addr) (ASN, bool) {
	if a.IsPrivate() {
		return 0, false
	}
	if o, ok := t.byAddr[a]; ok {
		switch o.Kind {
		case OwnerHost:
			return t.Hosts[o.Host].AS, true
		default:
			return t.Routers[o.Router].AS, true
		}
	}
	return t.BlockAS(a)
}

// BlockAS maps an address to the AS whose address block contains it — what
// a RouteViews-origin IP-to-AS mapping would report.
func (t *Topology) BlockAS(a ipv4.Addr) (ASN, bool) {
	if a.IsPrivate() {
		return 0, false
	}
	asn, ok := t.blockByHi[uint32(a)>>16]
	return asn, ok
}

// BGPPrefixOf returns the routed BGP prefix containing a: one of the AS's
// announced /24s for host space, or the AS's infrastructure /17 for
// router addresses. This is the granularity ingress surveys and vantage
// point selection operate on (§4.3).
func (t *Topology) BGPPrefixOf(a ipv4.Addr) (ipv4.Prefix, bool) {
	asn, ok := t.BlockAS(a)
	if !ok {
		return ipv4.Prefix{}, false
	}
	if uint32(a)>>8&0xff >= 128 {
		return ipv4.Prefix{Addr: a.Mask(24), Bits: 24}, true
	}
	return ipv4.Prefix{Addr: t.ASes[asn].Block.Addr, Bits: 17}, true
}

// AllBGPPrefixes lists every routed prefix: all announced /24s plus each
// AS's infrastructure /17.
func (t *Topology) AllBGPPrefixes() []ipv4.Prefix {
	var out []ipv4.Prefix
	for _, as := range t.ASes {
		out = append(out, ipv4.Prefix{Addr: as.Block.Addr, Bits: 17})
		out = append(out, as.Prefixes...)
	}
	return out
}

// RouterOf returns the router owning address a, if a is an interface or
// loopback address.
func (t *Topology) RouterOf(a ipv4.Addr) (RouterID, bool) {
	o, ok := t.byAddr[a]
	if !ok || o.Kind == OwnerHost {
		return None, false
	}
	return o.Router, true
}

// HostOf returns the host owning address a.
func (t *Topology) HostOf(a ipv4.Addr) (*Host, bool) {
	o, ok := t.byAddr[a]
	if !ok || o.Kind != OwnerHost {
		return nil, false
	}
	return &t.Hosts[o.Host], true
}

// IntraNeighbors returns the intradomain adjacency of router r.
func (t *Topology) IntraNeighbors(r RouterID) []intraEdge { return t.intraAdj[r] }

// LinkBetween returns the link connecting interfaces i0 and i1 of a link.
func (t *Topology) LinkOtherEnd(l LinkID, from RouterID) (RouterID, IfaceID) {
	lk := &t.Links[l]
	if t.Ifaces[lk.I0].Router == from {
		return t.Ifaces[lk.I1].Router, lk.I1
	}
	return t.Ifaces[lk.I0].Router, lk.I0
}

// IfaceOn returns the interface of router r on link l.
func (t *Topology) IfaceOn(l LinkID, r RouterID) IfaceID {
	lk := &t.Links[l]
	if t.Ifaces[lk.I0].Router == r {
		return lk.I0
	}
	return lk.I1
}

// Aliases returns all addresses belonging to router r (ground truth used
// to build the simulated alias-resolution datasets).
func (t *Topology) Aliases(r RouterID) []ipv4.Addr {
	rt := t.Routers[r]
	out := make([]ipv4.Addr, 0, len(rt.Ifaces)+1)
	out = append(out, rt.Loopback)
	for _, i := range rt.Ifaces {
		out = append(out, t.Ifaces[i].Addr)
	}
	return out
}

// SameRouter reports whether two addresses belong to the same router
// (ground truth alias test).
func (t *Topology) SameRouter(a, b ipv4.Addr) bool {
	ra, oka := t.RouterOf(a)
	rb, okb := t.RouterOf(b)
	return oka && okb && ra == rb
}

// Stats summarizes the topology.
func (t *Topology) Stats() string {
	tiers := map[Tier]int{}
	for _, as := range t.ASes {
		tiers[as.Tier]++
	}
	nEdges := 0
	for _, as := range t.ASes {
		nEdges += len(as.Neighbors)
	}
	return fmt.Sprintf("ases=%d (tier1=%d transit=%d colo=%d nren=%d stub=%d) as-edges=%d routers=%d links=%d hosts=%d",
		len(t.ASes), tiers[Tier1], tiers[Transit], tiers[Colo], tiers[NREN], tiers[Stub],
		nEdges/2, len(t.Routers), len(t.Links), len(t.Hosts))
}
