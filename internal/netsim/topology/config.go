package topology

import (
	"fmt"
	"math"
)

// Config controls topology generation. The zero value is not usable; start
// from DefaultConfig (a 2020-flavoured Internet: flattened, with colo ASes
// near most networks) or Config2016 (the pre-flattening Internet used for
// the Fig 11 / Table 6 comparison).
type Config struct {
	Seed    int64
	NumASes int

	// Tier mix. Tier1Count tier-1 ASes form a clique; ColoFrac of ASes
	// are colocation-style densely-peering networks (the flattening knob:
	// Insight 1.7), NRENFrac are research networks, TransitFrac classic
	// transit, and the remainder stubs.
	Tier1Count  int
	TransitFrac float64
	ColoFrac    float64
	NRENFrac    float64

	// Peering density multipliers (2016 topologies peer less).
	ColoPeerMin, ColoPeerMax int
	NRENPeerMin, NRENPeerMax int
	StubAtIXPFrac            float64 // stubs that peer directly at IXPs

	// Router counts per AS by tier.
	CoreT1Min, CoreT1Max           int
	CoreTransitMin, CoreTransitMax int
	CoreStubMin, CoreStubMax       int

	// Prefix/host population.
	PrefixesPerStubMax int // stubs announce 1..max prefixes
	HostsPerPrefix     int

	// Host responsiveness (Table 6 knobs).
	HostPingResponsive float64 // fraction of hosts answering plain ping
	HostRRGivenPing    float64 // fraction of ping-responsive answering RR
	HostStamps         float64 // fraction of RR-responsive hosts that stamp

	// Router behaviour.
	RouterPingResponsive float64
	RouterOptResponsive  float64 // routers answering echo with options
	SNMPv3Responsive     float64 // routers answering SNMPv3 (Table 2 study)
	StampEgressP         float64
	StampIngressP        float64
	StampLoopbackP       float64
	StampPrivateP        float64 // remainder: StampNone
	DBRViolatorP         float64 // destination-based-routing violators (Appx E)
	PerPacketLBP         float64 // random balancing of option packets

	// AS behaviour.
	ASFiltersOptionsP float64 // ASes dropping transiting option packets
	ASAllowsSpoofingP float64 // non-colo ASes permitting spoofed sources

	// Latency ranges, microseconds.
	IntraLatMinUS, IntraLatMaxUS int32
	InterLatMinUS, InterLatMaxUS int32
}

// DefaultConfig returns a 2020-flavoured Internet with n ASes.
func DefaultConfig(n int) Config {
	return Config{
		Seed:    1,
		NumASes: n,

		Tier1Count:  clampInt(n/400, 4, 14),
		TransitFrac: 0.12,
		ColoFrac:    0.05,
		NRENFrac:    0.015,

		ColoPeerMin: 4, ColoPeerMax: 12,
		NRENPeerMin: 5, NRENPeerMax: 15,
		StubAtIXPFrac: 0.15,

		CoreT1Min: 5, CoreT1Max: 9,
		CoreTransitMin: 2, CoreTransitMax: 5,
		CoreStubMin: 1, CoreStubMax: 2,

		PrefixesPerStubMax: 3,
		HostsPerPrefix:     4,

		HostPingResponsive: 0.73,
		HostRRGivenPing:    0.78,
		HostStamps:         0.80,

		RouterPingResponsive: 0.92,
		RouterOptResponsive:  0.92,
		SNMPv3Responsive:     0.305, // 30.5% per §4.4
		StampEgressP:         0.68,
		StampIngressP:        0.10,
		StampLoopbackP:       0.08,
		StampPrivateP:        0.05,
		DBRViolatorP:         0.04,
		PerPacketLBP:         0.05,

		ASFiltersOptionsP: 0.015,
		ASAllowsSpoofingP: 0.25,

		IntraLatMinUS: 100, IntraLatMaxUS: 3000,
		InterLatMinUS: 1000, InterLatMaxUS: 30000,
	}
}

// Validate rejects unusable configurations: NaN/Inf or out-of-range
// probability fields and non-positive population counts. Generate does
// not call it (deterministic generation is seed-stable); harnesses that
// accept configs from outside (simtest, fuzzers) should.
func (c Config) Validate() error {
	if c.NumASes <= 0 {
		return fmt.Errorf("topology: NumASes=%d not positive", c.NumASes)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"TransitFrac", c.TransitFrac},
		{"ColoFrac", c.ColoFrac},
		{"NRENFrac", c.NRENFrac},
		{"StubAtIXPFrac", c.StubAtIXPFrac},
		{"HostPingResponsive", c.HostPingResponsive},
		{"HostRRGivenPing", c.HostRRGivenPing},
		{"HostStamps", c.HostStamps},
		{"RouterPingResponsive", c.RouterPingResponsive},
		{"RouterOptResponsive", c.RouterOptResponsive},
		{"SNMPv3Responsive", c.SNMPv3Responsive},
		{"StampEgressP", c.StampEgressP},
		{"StampIngressP", c.StampIngressP},
		{"StampLoopbackP", c.StampLoopbackP},
		{"StampPrivateP", c.StampPrivateP},
		{"DBRViolatorP", c.DBRViolatorP},
		{"PerPacketLBP", c.PerPacketLBP},
		{"ASFiltersOptionsP", c.ASFiltersOptionsP},
		{"ASAllowsSpoofingP", c.ASAllowsSpoofingP},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("topology: %s is not a finite number", f.name)
		}
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("topology: %s=%v outside [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Config2016 returns a pre-flattening Internet: far fewer colo ASes and
// sparser peering, so vantage points end up farther (in RR hops) from
// destinations — the Fig 11 contrast.
func Config2016(n int) Config {
	c := DefaultConfig(n)
	c.ColoFrac = 0.008
	c.ColoPeerMin, c.ColoPeerMax = 2, 5
	c.NRENPeerMin, c.NRENPeerMax = 3, 8
	c.StubAtIXPFrac = 0.03
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
