package topology

import (
	"testing"

	"revtr/internal/netsim/ipv4"
)

func genSmall(t testing.TB) *Topology {
	t.Helper()
	cfg := DefaultConfig(300)
	cfg.Seed = 7
	return Generate(cfg)
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t)
	b := genSmall(t)
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ:\n%s\n%s", a.Stats(), b.Stats())
	}
	if len(a.Routers) != len(b.Routers) {
		t.Fatal("router counts differ")
	}
	for i := range a.Routers {
		if a.Routers[i].Loopback != b.Routers[i].Loopback || a.Routers[i].Stamp != b.Routers[i].Stamp {
			t.Fatalf("router %d differs", i)
		}
	}
}

func TestEveryNonTier1HasProvider(t *testing.T) {
	tp := genSmall(t)
	for _, as := range tp.ASes {
		if as.Tier == Tier1 {
			continue
		}
		found := false
		for _, nb := range as.Neighbors {
			if nb.Rel == RelProvider {
				found = true
			}
		}
		if !found {
			t.Errorf("AS%d (%s) has no provider", as.ASN, as.Tier)
		}
	}
}

func TestCustomerGraphAcyclic(t *testing.T) {
	tp := genSmall(t)
	// Providers must always have been created earlier (lower ASN) except
	// stubs peering; check provider ASN < customer ASN never violated the
	// DAG property via cycle detection.
	color := make([]int, len(tp.ASes)) // 0 white, 1 gray, 2 black
	var visit func(a ASN) bool
	visit = func(a ASN) bool {
		if color[a] == 1 {
			return false
		}
		if color[a] == 2 {
			return true
		}
		color[a] = 1
		for _, nb := range tp.ASes[a].Neighbors {
			if nb.Rel == RelCustomer { // descend into customers
				if !visit(nb.ASN) {
					return false
				}
			}
		}
		color[a] = 2
		return true
	}
	for _, as := range tp.ASes {
		if !visit(as.ASN) {
			t.Fatalf("customer cycle involving AS%d", as.ASN)
		}
	}
}

func TestRelationshipSymmetry(t *testing.T) {
	tp := genSmall(t)
	for _, as := range tp.ASes {
		for _, nb := range as.Neighbors {
			back := tp.ASes[nb.ASN].Neighbor(as.ASN)
			if back == nil {
				t.Fatalf("AS%d -> AS%d not symmetric", as.ASN, nb.ASN)
			}
			if back.Rel != nb.Rel.Invert() {
				t.Fatalf("AS%d-%d rel mismatch: %v vs %v", as.ASN, nb.ASN, nb.Rel, back.Rel)
			}
			if len(nb.Link) == 0 {
				t.Fatalf("AS%d-%d adjacency has no router link", as.ASN, nb.ASN)
			}
		}
	}
}

func TestAddressesUnique(t *testing.T) {
	tp := genSmall(t)
	seen := map[ipv4.Addr]string{}
	check := func(a ipv4.Addr, what string) {
		if prev, dup := seen[a]; dup {
			t.Fatalf("address %s assigned to both %s and %s", a, prev, what)
		}
		seen[a] = what
	}
	for _, r := range tp.Routers {
		check(r.Loopback, "loopback")
	}
	for _, i := range tp.Ifaces {
		check(i.Addr, "iface")
	}
	for _, h := range tp.Hosts {
		check(h.Addr, "host")
	}
}

func TestAddressOwnership(t *testing.T) {
	tp := genSmall(t)
	for _, i := range tp.Ifaces {
		r, ok := tp.RouterOf(i.Addr)
		if !ok || r != i.Router {
			t.Fatalf("iface %s not mapped to its router", i.Addr)
		}
	}
	for hi := range tp.Hosts {
		h, ok := tp.HostOf(tp.Hosts[hi].Addr)
		if !ok || h.ID != tp.Hosts[hi].ID {
			t.Fatalf("host %s not mapped", tp.Hosts[hi].Addr)
		}
	}
}

func TestOwnerASAndBlockAS(t *testing.T) {
	tp := genSmall(t)
	mismatches := 0
	for ii := range tp.Ifaces {
		i := &tp.Ifaces[ii]
		asn, ok := tp.OwnerAS(i.Addr)
		if !ok {
			t.Fatalf("no owner for %s", i.Addr)
		}
		if asn != tp.Routers[i.Router].AS {
			t.Fatalf("OwnerAS(%s) = %d, router AS = %d", i.Addr, asn, tp.Routers[i.Router].AS)
		}
		blk, ok := tp.BlockAS(i.Addr)
		if !ok {
			t.Fatalf("no block owner for %s", i.Addr)
		}
		if !tp.ASes[blk].Block.Contains(i.Addr) {
			t.Fatalf("BlockAS(%s)=%d block mismatch", i.Addr, blk)
		}
		if blk != asn {
			mismatches++ // interdomain /30s: expected for border interfaces
		}
	}
	if mismatches == 0 {
		t.Error("no block/owner mismatches: interdomain /30 allocation not exercised")
	}
	// Private addresses have no owner.
	if _, ok := tp.OwnerAS(ipv4.MustParseAddr("10.0.0.1")); ok {
		t.Error("private address mapped to an AS")
	}
	if _, ok := tp.BlockAS(ipv4.MustParseAddr("10.0.0.1")); ok {
		t.Error("private address block-mapped to an AS")
	}
}

// TestIntraConnected: within each AS every router can reach every other
// over intradomain links — required for FIB construction.
func TestIntraConnected(t *testing.T) {
	tp := genSmall(t)
	for _, as := range tp.ASes {
		if len(as.Routers) == 0 {
			t.Fatalf("AS%d has no routers", as.ASN)
		}
		seen := map[RouterID]bool{as.Routers[0]: true}
		stack := []RouterID{as.Routers[0]}
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range tp.IntraNeighbors(r) {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		if len(seen) != len(as.Routers) {
			t.Fatalf("AS%d intra graph disconnected: %d/%d", as.ASN, len(seen), len(as.Routers))
		}
	}
}

func TestInterLinksConnectBorders(t *testing.T) {
	tp := genSmall(t)
	for li := range tp.Links {
		l := &tp.Links[li]
		r0 := tp.Routers[tp.Ifaces[l.I0].Router]
		r1 := tp.Routers[tp.Ifaces[l.I1].Router]
		if l.Inter {
			if r0.AS == r1.AS {
				t.Fatalf("inter link %d within AS%d", l.ID, r0.AS)
			}
			if r0.Role != RoleBorder || r1.Role != RoleBorder {
				t.Fatalf("inter link %d not between borders", l.ID)
			}
		} else if r0.AS != r1.AS {
			t.Fatalf("intra link %d crosses ASes", l.ID)
		}
	}
}

func TestP2PAddressesShareSlash30(t *testing.T) {
	tp := genSmall(t)
	for li := range tp.Links {
		l := &tp.Links[li]
		a0, a1 := tp.Ifaces[l.I0].Addr, tp.Ifaces[l.I1].Addr
		if a0.Mask(30) != a1.Mask(30) {
			t.Fatalf("link %d endpoints %s and %s not in same /30", l.ID, a0, a1)
		}
	}
}

func TestConesTier1Largest(t *testing.T) {
	tp := genSmall(t)
	maxStub, minT1 := 0, 1<<30
	for _, as := range tp.ASes {
		switch as.Tier {
		case Tier1:
			if as.ConeSize < minT1 {
				minT1 = as.ConeSize
			}
		case Stub:
			if as.ConeSize > maxStub {
				maxStub = as.ConeSize
			}
			if as.ConeSize != 1 {
				t.Fatalf("stub AS%d cone %d != 1", as.ASN, as.ConeSize)
			}
		}
	}
	if minT1 <= maxStub {
		t.Fatalf("tier-1 min cone %d <= stub max cone %d", minT1, maxStub)
	}
}

func TestAliases(t *testing.T) {
	tp := genSmall(t)
	r := tp.Routers[0]
	al := tp.Aliases(r.ID)
	if len(al) != len(r.Ifaces)+1 {
		t.Fatalf("alias count %d != %d", len(al), len(r.Ifaces)+1)
	}
	for _, a := range al[1:] {
		if !tp.SameRouter(al[0], a) {
			t.Fatalf("%s and %s should be same router", al[0], a)
		}
	}
}

func TestHostsInPrefixes(t *testing.T) {
	tp := genSmall(t)
	for _, h := range tp.Hosts {
		in := false
		for _, p := range tp.ASes[h.AS].Prefixes {
			if p.Contains(h.Addr) {
				in = true
			}
		}
		if !in {
			t.Fatalf("host %s not inside its AS prefixes", h.Addr)
		}
		if !h.PingResponsive && h.RRResponsive {
			t.Fatalf("host %s RR-responsive but not ping-responsive", h.Addr)
		}
	}
}

func TestResponsivenessRates(t *testing.T) {
	cfg := DefaultConfig(600)
	tp := Generate(cfg)
	ping, rr := 0, 0
	for _, h := range tp.Hosts {
		if h.PingResponsive {
			ping++
		}
		if h.RRResponsive {
			rr++
		}
	}
	pr := float64(ping) / float64(len(tp.Hosts))
	if pr < 0.65 || pr > 0.81 {
		t.Errorf("ping-responsive rate %.2f outside [0.65,0.81]", pr)
	}
	rrOfPing := float64(rr) / float64(ping)
	if rrOfPing < 0.70 || rrOfPing > 0.86 {
		t.Errorf("RR|ping rate %.2f outside [0.70,0.86]", rrOfPing)
	}
}

func TestConfig2016LessColo(t *testing.T) {
	c20 := DefaultConfig(800)
	c16 := Config2016(800)
	t20 := Generate(c20)
	t16 := Generate(c16)
	n20 := len(t20.ASesByTier(Colo))
	n16 := len(t16.ASesByTier(Colo))
	if n16 >= n20 {
		t.Errorf("2016 colo count %d >= 2020 count %d", n16, n20)
	}
}

func TestGeneratePanicsOnTinyConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on tiny config")
		}
	}()
	cfg := DefaultConfig(100)
	cfg.NumASes = 2
	Generate(cfg)
}
