package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"revtr/internal/netsim/ipv4"
)

// Generate builds a topology from cfg. Generation is deterministic in
// cfg.Seed.
func Generate(cfg Config) *Topology {
	if cfg.NumASes < cfg.Tier1Count+3 {
		panic(fmt.Sprintf("topology: NumASes=%d too small", cfg.NumASes))
	}
	g := &generator{
		t:   &Topology{Cfg: cfg, byAddr: make(map[ipv4.Addr]AddrOwner)},
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	g.assignTiers()
	g.buildASGraph()
	g.placeASes()
	g.buildRouters()
	g.buildInterLinks()
	g.buildHosts()
	g.finish()
	return g.t
}

type generator struct {
	t   *Topology
	cfg Config
	rng *rand.Rand

	nextBlock  uint32 // next /16 block base
	nextPriv   uint32 // next private stamp address
	custDegree []int  // running customer counts for preferential attachment
	nextP2P    []uint32
	nextLoop   []uint32
}

// blockBase allocates the next /16 that does not overlap private or
// loopback space.
func (g *generator) blockBase() ipv4.Prefix {
	if g.nextBlock == 0 {
		g.nextBlock = 0x10000000 // start at 16.0.0.0
	}
	for {
		b := g.nextBlock
		g.nextBlock += 0x10000
		// Skip 127.0.0.0/8, 172.16.0.0/12, 192.168.0.0/16.
		if b>>24 == 127 || (b >= 0xac100000 && b < 0xac200000) || b>>16 == 0xc0a8 {
			continue
		}
		if b >= 0xe0000000 {
			panic("topology: out of /16 blocks")
		}
		return ipv4.Prefix{Addr: ipv4.Addr(b), Bits: 16}
	}
}

func (g *generator) assignTiers() {
	cfg := g.cfg
	n := cfg.NumASes
	nT1 := cfg.Tier1Count
	nTransit := int(float64(n) * cfg.TransitFrac)
	nColo := maxInt(3, int(float64(n)*cfg.ColoFrac))
	nNREN := maxInt(2, int(float64(n)*cfg.NRENFrac))
	g.custDegree = make([]int, n)
	g.nextP2P = make([]uint32, n)
	g.nextLoop = make([]uint32, n)
	for i := 0; i < n; i++ {
		var tier Tier
		switch {
		case i < nT1:
			tier = Tier1
		case i < nT1+nTransit:
			tier = Transit
		case i < nT1+nTransit+nColo:
			tier = Colo
		case i < nT1+nTransit+nColo+nNREN:
			tier = NREN
		default:
			tier = Stub
		}
		as := &AS{ASN: ASN(i), Tier: tier, Block: g.blockBase()}
		g.nextP2P[i] = uint32(as.Block.Addr) + 0x0100
		g.nextLoop[i] = uint32(as.Block.Addr)
		g.t.ASes = append(g.t.ASes, as)
	}
}

// addASEdge records an AS-level adjacency; rel is from a's perspective.
func (g *generator) addASEdge(a, b ASN, rel Rel) {
	ta, tb := g.t.ASes[a], g.t.ASes[b]
	if ta.Neighbor(b) != nil {
		return
	}
	ta.Neighbors = append(ta.Neighbors, Neighbor{ASN: b, Rel: rel})
	tb.Neighbors = append(tb.Neighbors, Neighbor{ASN: a, Rel: rel.Invert()})
	if rel == RelCustomer {
		g.custDegree[a]++
	} else if rel == RelProvider {
		g.custDegree[b]++
	}
}

// pickProvider selects a provider among candidate ASNs, weighted by
// customer degree + 1 (preferential attachment → heavy-tailed cones).
func (g *generator) pickProvider(cands []ASN, exclude map[ASN]bool) (ASN, bool) {
	total := 0
	for _, c := range cands {
		if !exclude[c] {
			total += g.custDegree[c] + 1
		}
	}
	if total == 0 {
		return 0, false
	}
	x := g.rng.Intn(total)
	for _, c := range cands {
		if exclude[c] {
			continue
		}
		x -= g.custDegree[c] + 1
		if x < 0 {
			return c, true
		}
	}
	return 0, false
}

func (g *generator) buildASGraph() {
	cfg := g.cfg
	var t1s, transits, colos, nrens []ASN
	for _, as := range g.t.ASes {
		switch as.Tier {
		case Tier1:
			t1s = append(t1s, as.ASN)
		case Transit:
			transits = append(transits, as.ASN)
		case Colo:
			colos = append(colos, as.ASN)
		case NREN:
			nrens = append(nrens, as.ASN)
		}
	}
	// Tier-1 clique.
	for i := 0; i < len(t1s); i++ {
		for j := i + 1; j < len(t1s); j++ {
			g.addASEdge(t1s[i], t1s[j], RelPeer)
		}
	}
	// Transit: providers among tier1 + earlier transit; occasional peering.
	for idx, a := range transits {
		cands := append([]ASN{}, t1s...)
		cands = append(cands, transits[:idx]...)
		ex := map[ASN]bool{a: true}
		np := 1 + g.rng.Intn(2)
		for k := 0; k < np; k++ {
			if p, ok := g.pickProvider(cands, ex); ok {
				g.addASEdge(p, a, RelCustomer)
				ex[p] = true
			}
		}
		if idx > 0 && g.rng.Float64() < 0.35 {
			for k := 0; k < 1+g.rng.Intn(3); k++ {
				p := transits[g.rng.Intn(idx)]
				if p != a && !ex[p] {
					g.addASEdge(a, p, RelPeer)
					ex[p] = true
				}
			}
		}
	}
	// Colo: providers among tier1/transit, wide peering (the flattening).
	for idx, a := range colos {
		cands := append(append([]ASN{}, t1s...), transits...)
		ex := map[ASN]bool{a: true}
		for k := 0; k < 1+g.rng.Intn(2); k++ {
			if p, ok := g.pickProvider(cands, ex); ok {
				g.addASEdge(p, a, RelCustomer)
				ex[p] = true
			}
		}
		peerCands := append(append(append([]ASN{}, transits...), colos[:idx]...), t1s...)
		np := cfg.ColoPeerMin + g.rng.Intn(maxInt(1, cfg.ColoPeerMax-cfg.ColoPeerMin+1))
		for k := 0; k < np && len(peerCands) > 0; k++ {
			p := peerCands[g.rng.Intn(len(peerCands))]
			if p != a && !ex[p] {
				g.addASEdge(a, p, RelPeer)
				ex[p] = true
			}
		}
	}
	// NREN: one provider, very wide peering, and they carry each other's
	// traffic (multi-AS cold potato emerges from peering + low local-pref
	// asymmetries).
	for idx, a := range nrens {
		cands := append(append([]ASN{}, t1s...), transits...)
		ex := map[ASN]bool{a: true}
		if p, ok := g.pickProvider(cands, ex); ok {
			g.addASEdge(p, a, RelCustomer)
			ex[p] = true
		}
		peerCands := append(append(append([]ASN{}, transits...), colos...), nrens[:idx]...)
		np := cfg.NRENPeerMin + g.rng.Intn(maxInt(1, cfg.NRENPeerMax-cfg.NRENPeerMin+1))
		for k := 0; k < np && len(peerCands) > 0; k++ {
			p := peerCands[g.rng.Intn(len(peerCands))]
			if p != a && !ex[p] {
				g.addASEdge(a, p, RelPeer)
				ex[p] = true
			}
		}
	}
	// Stubs: 1–3 providers; some peer at IXPs (via colo ASes); a few are
	// education networks homed behind NRENs.
	for _, as := range g.t.ASes {
		if as.Tier != Stub {
			continue
		}
		a := as.ASN
		ex := map[ASN]bool{a: true}
		var cands []ASN
		r := g.rng.Float64()
		switch {
		case r < 0.05 && len(nrens) > 0: // edu stub
			cands = nrens
		case r < 0.10:
			cands = t1s
		default:
			cands = append(append([]ASN{}, transits...), colos...)
		}
		if p, ok := g.pickProvider(cands, ex); ok {
			g.addASEdge(p, a, RelCustomer)
			ex[p] = true
		}
		// Multihoming: nearly half of stubs buy from a second provider.
		extra := 0
		if r2 := g.rng.Float64(); r2 < 0.10 {
			extra = 2
		} else if r2 < 0.45 {
			extra = 1
		}
		all := append(append([]ASN{}, transits...), colos...)
		for k := 0; k < extra; k++ {
			if p, ok := g.pickProvider(all, ex); ok {
				g.addASEdge(p, a, RelCustomer)
				ex[p] = true
			}
		}
		if g.rng.Float64() < cfg.StubAtIXPFrac && len(colos) > 0 {
			p := colos[g.rng.Intn(len(colos))]
			if !ex[p] {
				g.addASEdge(a, p, RelPeer)
			}
		}
	}
}

// placeASes assigns coarse geography: tier-1s spread uniformly, every
// other AS near its first provider (regional clustering).
func (g *generator) placeASes() {
	for _, as := range g.t.ASes {
		var prov *AS
		for _, nb := range as.Neighbors {
			if nb.Rel == RelProvider {
				prov = g.t.ASes[nb.ASN]
				break
			}
		}
		if prov == nil {
			as.Pos = [2]float64{g.rng.Float64(), g.rng.Float64()}
			continue
		}
		// Providers are created (and therefore placed) before customers.
		as.Pos = [2]float64{
			clampF(prov.Pos[0]+g.rng.NormFloat64()*0.08, 0, 1),
			clampF(prov.Pos[1]+g.rng.NormFloat64()*0.08, 0, 1),
		}
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// interLatBetween derives an interdomain link latency from the distance
// between the two ASes, with jitter (links land in different cities).
func (g *generator) interLatBetween(a, b ASN) int32 {
	pa, pb := g.t.ASes[a].Pos, g.t.ASes[b].Pos
	dx, dy := pa[0]-pb[0], pa[1]-pb[1]
	dist := dx*dx + dy*dy
	// sqrt via simple iteration-free approximation is overkill; use the
	// real thing.
	d := math.Sqrt(dist)
	base := float64(g.cfg.InterLatMinUS)
	span := float64(g.cfg.InterLatMaxUS - g.cfg.InterLatMinUS)
	lat := base + span*d*(0.7+0.6*g.rng.Float64())
	if lat < float64(g.cfg.InterLatMinUS) {
		lat = float64(g.cfg.InterLatMinUS)
	}
	return int32(lat)
}

// allocLoopback hands out the next loopback address in the AS block
// (x.x.0.0/24 region).
func (g *generator) allocLoopback(asn ASN) ipv4.Addr {
	a := g.nextLoop[asn]
	g.nextLoop[asn]++
	if a-uint32(g.t.ASes[asn].Block.Addr) >= 0x100 {
		panic("topology: too many routers in AS")
	}
	return ipv4.Addr(a)
}

// allocP2P hands out a /30 from the AS block and returns its two usable
// addresses.
func (g *generator) allocP2P(asn ASN) (ipv4.Addr, ipv4.Addr) {
	base := g.nextP2P[asn]
	g.nextP2P[asn] += 4
	if base-uint32(g.t.ASes[asn].Block.Addr) >= 0x8000 {
		panic("topology: out of p2p space in AS")
	}
	return ipv4.Addr(base + 1), ipv4.Addr(base + 2)
}

func (g *generator) allocPrivate() ipv4.Addr {
	if g.nextPriv == 0 {
		g.nextPriv = 0x0a000001
	}
	a := g.nextPriv
	g.nextPriv++
	return ipv4.Addr(a)
}

func (g *generator) newRouter(asn ASN, role RouterRole) *Router {
	cfg := g.cfg
	r := &Router{
		ID:       RouterID(len(g.t.Routers)),
		AS:       asn,
		Role:     role,
		Loopback: g.allocLoopback(asn),
	}
	r.RespondsToPing = g.rng.Float64() < cfg.RouterPingResponsive
	r.RespondsToOptions = r.RespondsToPing && g.rng.Float64() < cfg.RouterOptResponsive
	r.SNMPv3 = g.rng.Float64() < cfg.SNMPv3Responsive
	r.DBRViolator = g.rng.Float64() < cfg.DBRViolatorP
	r.PerPacketLB = g.rng.Float64() < cfg.PerPacketLBP
	x := g.rng.Float64()
	switch {
	case x < cfg.StampEgressP:
		r.Stamp = StampEgress
	case x < cfg.StampEgressP+cfg.StampIngressP:
		r.Stamp = StampIngress
	case x < cfg.StampEgressP+cfg.StampIngressP+cfg.StampLoopbackP:
		r.Stamp = StampLoopback
	case x < cfg.StampEgressP+cfg.StampIngressP+cfg.StampLoopbackP+cfg.StampPrivateP:
		r.Stamp = StampPrivate
		r.PrivateAddr = g.allocPrivate()
	default:
		r.Stamp = StampNone
	}
	g.t.Routers = append(g.t.Routers, r)
	as := g.t.ASes[asn]
	as.Routers = append(as.Routers, r.ID)
	g.t.byAddr[r.Loopback] = AddrOwner{Kind: OwnerLoopback, Router: r.ID}
	return r
}

// connectRouters creates a link between two routers, with the /30
// allocated from ownerAS's block.
func (g *generator) connectRouters(a, b RouterID, ownerAS ASN, inter bool, latUS int32) LinkID {
	addrA, addrB := g.allocP2P(ownerAS)
	ifA := Iface{ID: IfaceID(len(g.t.Ifaces)), Router: a, Addr: addrA}
	g.t.Ifaces = append(g.t.Ifaces, ifA)
	ifB := Iface{ID: IfaceID(len(g.t.Ifaces)), Router: b, Addr: addrB}
	g.t.Ifaces = append(g.t.Ifaces, ifB)
	l := Link{ID: LinkID(len(g.t.Links)), I0: ifA.ID, I1: ifB.ID, LatencyUS: latUS, Inter: inter}
	g.t.Links = append(g.t.Links, l)
	g.t.Ifaces[ifA.ID].Link = l.ID
	g.t.Ifaces[ifB.ID].Link = l.ID
	g.t.Routers[a].Ifaces = append(g.t.Routers[a].Ifaces, ifA.ID)
	g.t.Routers[b].Ifaces = append(g.t.Routers[b].Ifaces, ifB.ID)
	g.t.byAddr[addrA] = AddrOwner{Kind: OwnerIface, Router: a, Iface: ifA.ID}
	g.t.byAddr[addrB] = AddrOwner{Kind: OwnerIface, Router: b, Iface: ifB.ID}
	return l.ID
}

func (g *generator) intraLat() int32 {
	return g.cfg.IntraLatMinUS + g.rng.Int31n(g.cfg.IntraLatMaxUS-g.cfg.IntraLatMinUS+1)
}

func (g *generator) interLat() int32 {
	return g.cfg.InterLatMinUS + g.rng.Int31n(g.cfg.InterLatMaxUS-g.cfg.InterLatMinUS+1)
}

func (g *generator) buildRouters() {
	cfg := g.cfg
	for _, as := range g.t.ASes {
		var nCore int
		switch as.Tier {
		case Tier1:
			nCore = cfg.CoreT1Min + g.rng.Intn(cfg.CoreT1Max-cfg.CoreT1Min+1)
		case Transit, Colo, NREN:
			nCore = cfg.CoreTransitMin + g.rng.Intn(cfg.CoreTransitMax-cfg.CoreTransitMin+1)
		default:
			nCore = cfg.CoreStubMin + g.rng.Intn(cfg.CoreStubMax-cfg.CoreStubMin+1)
		}
		cores := make([]RouterID, nCore)
		for i := range cores {
			cores[i] = g.newRouter(as.ASN, RoleCore).ID
		}
		// Ring + chords.
		for i := 0; i < nCore; i++ {
			if nCore > 1 {
				g.connectRouters(cores[i], cores[(i+1)%nCore], as.ASN, false, g.intraLat())
			}
		}
		// Dense chords keep the intradomain diameter at 1–2 hops, matching
		// the few router hops traceroutes observe crossing real ASes.
		for k := 0; k < nCore; k++ {
			i, j := g.rng.Intn(nCore), g.rng.Intn(nCore)
			if i != j && absInt(i-j) != 1 && absInt(i-j) != nCore-1 {
				g.connectRouters(cores[i], cores[j], as.ASN, false, g.intraLat())
			}
		}
		// Border routers: about one per two adjacencies, capped by tier.
		deg := len(as.Neighbors)
		maxB := 3
		switch as.Tier {
		case Tier1:
			maxB = 12
		case Transit, Colo:
			maxB = 8
		case NREN:
			maxB = 6
		}
		nBorder := clampInt((deg+1)/2, 1, maxB)
		for i := 0; i < nBorder; i++ {
			b := g.newRouter(as.ASN, RoleBorder)
			as.Borders = append(as.Borders, b.ID)
			g.connectRouters(b.ID, cores[g.rng.Intn(nCore)], as.ASN, false, g.intraLat())
			if nCore > 1 {
				g.connectRouters(b.ID, cores[g.rng.Intn(nCore)], as.ASN, false, g.intraLat())
			}
		}
		// Announced prefixes and access routers.
		var nPfx int
		if as.Tier == Stub {
			nPfx = 1 + g.rng.Intn(cfg.PrefixesPerStubMax)
		} else {
			nPfx = 1 + g.rng.Intn(2)
		}
		for i := 0; i < nPfx; i++ {
			pfx := ipv4.Prefix{Addr: as.Block.Addr + ipv4.Addr((128+i)<<8), Bits: 24}
			as.Prefixes = append(as.Prefixes, pfx)
			acc := g.newRouter(as.ASN, RoleAccess)
			// Colo racks sit at the network edge, one hop from the
			// interconnection fabric — part of why vantage points hosted
			// there reach so many destinations within RR range
			// (Insight 1.7).
			if as.Tier == Colo && len(as.Borders) > 0 {
				g.connectRouters(acc.ID, as.Borders[g.rng.Intn(len(as.Borders))], as.ASN, false, g.intraLat())
			} else {
				g.connectRouters(acc.ID, cores[g.rng.Intn(nCore)], as.ASN, false, g.intraLat())
			}
		}
	}
}

func (g *generator) buildInterLinks() {
	for _, as := range g.t.ASes {
		for ni := range as.Neighbors {
			nb := &as.Neighbors[ni]
			if nb.ASN < as.ASN {
				continue // realize each adjacency once
			}
			other := g.t.ASes[nb.ASN]
			// The /30 comes from the provider's block (or the lower ASN
			// for peers) — this is what makes border-router IP-to-AS
			// mapping ambiguous, as in the real Internet (Appx B.2).
			owner := as.ASN
			if nb.Rel == RelProvider {
				owner = nb.ASN
			}
			// Non-stub ASes interconnect at several locations; this
			// multi-point peering is what makes interdomain links
			// frequently asymmetric at the router level (each side picks
			// its own hot-potato exit, §4.4 / Table 2).
			nLinks := 1
			switch {
			case as.Tier == Tier1 && other.Tier == Tier1:
				nLinks = 2 + g.rng.Intn(2)
			case as.Tier != Stub && other.Tier != Stub:
				nLinks = 1 + g.rng.Intn(2)
			}
			for k := 0; k < nLinks; k++ {
				ba := as.Borders[g.rng.Intn(len(as.Borders))]
				bb := other.Borders[g.rng.Intn(len(other.Borders))]
				l := g.connectRouters(ba, bb, owner, true, g.interLatBetween(as.ASN, nb.ASN))
				nb.Link = append(nb.Link, l)
				on := other.Neighbor(as.ASN)
				on.Link = append(on.Link, l)
			}
		}
	}
}

func (g *generator) buildHosts() {
	cfg := g.cfg
	for _, as := range g.t.ASes {
		// Access routers in order of creation correspond to prefixes.
		var access []RouterID
		for _, r := range as.Routers {
			if g.t.Routers[r].Role == RoleAccess {
				access = append(access, r)
			}
		}
		for pi, pfx := range as.Prefixes {
			router := access[pi%len(access)]
			for h := 0; h < cfg.HostsPerPrefix; h++ {
				addr := pfx.Nth(uint64(1 + h))
				ping := g.rng.Float64() < cfg.HostPingResponsive
				host := Host{
					ID:             HostID(len(g.t.Hosts)),
					Addr:           addr,
					Router:         router,
					AS:             as.ASN,
					PingResponsive: ping,
					RRResponsive:   ping && g.rng.Float64() < cfg.HostRRGivenPing,
					Stamps:         g.rng.Float64() < cfg.HostStamps,
				}
				g.t.Hosts = append(g.t.Hosts, host)
				as.Hosts = append(as.Hosts, host.ID)
				g.t.byAddr[addr] = AddrOwner{Kind: OwnerHost, Host: host.ID}
			}
		}
	}
}

func (g *generator) finish() {
	cfg := g.cfg
	t := g.t
	// AS behaviour flags.
	for _, as := range t.ASes {
		switch as.Tier {
		case Colo:
			as.AllowsSpoofing = g.rng.Float64() < 0.85
		case Tier1:
			as.AllowsSpoofing = false
		default:
			as.AllowsSpoofing = g.rng.Float64() < cfg.ASAllowsSpoofingP
		}
		if as.Tier == Transit || as.Tier == Stub {
			as.FiltersOptions = g.rng.Float64() < cfg.ASFiltersOptionsP
		}
	}
	// Block index for BGP-origin IP-to-AS mapping.
	t.blockByHi = make(map[uint32]ASN, len(t.ASes))
	for _, as := range t.ASes {
		t.blockByHi[uint32(as.Block.Addr)>>16] = as.ASN
	}
	// Intradomain adjacency lists.
	t.intraAdj = make([][]intraEdge, len(t.Routers))
	for li := range t.Links {
		l := &t.Links[li]
		if l.Inter {
			continue
		}
		r0, r1 := t.Ifaces[l.I0].Router, t.Ifaces[l.I1].Router
		t.intraAdj[r0] = append(t.intraAdj[r0], intraEdge{To: r1, Link: l.ID})
		t.intraAdj[r1] = append(t.intraAdj[r1], intraEdge{To: r0, Link: l.ID})
	}
	t.computeCones()
}

// computeCones computes customer cone sizes by memoized DFS over customer
// edges. The provider-selection rule (providers are always earlier-created
// ASes) guarantees the customer graph is acyclic.
func (t *Topology) computeCones() {
	memo := make([]map[ASN]bool, len(t.ASes))
	var cone func(a ASN) map[ASN]bool
	cone = func(a ASN) map[ASN]bool {
		if memo[a] != nil {
			return memo[a]
		}
		set := map[ASN]bool{a: true}
		memo[a] = set // pre-set for safety; graph is acyclic by construction
		for _, nb := range t.ASes[a].Neighbors {
			if nb.Rel == RelCustomer {
				for c := range cone(nb.ASN) {
					set[c] = true
				}
			}
		}
		return set
	}
	for _, as := range t.ASes {
		as.ConeSize = len(cone(as.ASN))
	}
}

// ASesByTier returns the ASNs of a tier, sorted.
func (t *Topology) ASesByTier(tier Tier) []ASN {
	var out []ASN
	for _, as := range t.ASes {
		if as.Tier == tier {
			out = append(out, as.ASN)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
