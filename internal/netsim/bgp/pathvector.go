package bgp

import (
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// This file implements a synchronous path-vector BGP simulation for
// special announcements: prefixes anycast from several sites, with
// per-site AS-path poisoning and per-neighbor no-export communities. It is
// the machinery behind the §6.1 traffic-engineering case study, where
// PEERING announces one prefix from 7 sites, poisons Cogent on the UFMG
// announcement, and uses Coloclue's no-export communities toward Fusix and
// True.
//
// Unlike the Gao–Rexford tree BFS (bgp.go), this engine keeps a full
// adj-RIB-in per AS and re-selects from current offers every round, so
// route withdrawal and replacement (which poisoning and communities cause)
// are handled correctly.

// AnnNeighbor is one attachment of an announcement site to the Internet.
type AnnNeighbor struct {
	ASN topology.ASN
	// Rel is the origin's relationship from the neighbor's perspective:
	// RelCustomer means the neighbor treats the origin as a customer (the
	// usual case for a stub/testbed), RelPeer a settlement-free peer.
	Rel topology.Rel
	// NoExportTo lists ASes this neighbor is told (via community) not to
	// export the route to.
	NoExportTo []topology.ASN
}

// AnnSite is one origination site of an anycast announcement.
type AnnSite struct {
	Name      string
	Neighbors []AnnNeighbor
	// Poison lists ASNs prepended into the announced path so those ASes
	// reject the route (BGP loop prevention), steering them elsewhere.
	Poison []topology.ASN
}

// Announcement is a (possibly anycast) prefix origination.
type Announcement struct {
	Prefix ipv4.Prefix
	Origin topology.ASN // virtual origin ASN (not in the topology graph)
	Sites  []AnnSite
}

// Route is an AS's selected route for an announcement.
type Route struct {
	Site  int // index into Announcement.Sites; -1 if no route
	Next  topology.ASN
	Class Class
	Path  []topology.ASN // from this AS (exclusive) to the origin (inclusive)
	// Alts lists every offer tied with the best on local preference,
	// class, and AS-path length. Real BGP resolves such ties per router
	// by IGP distance (hot potato) before falling back to router IDs, so
	// a large carrier's ingress routers can route one anycast prefix to
	// different sites — the §6.1 "Cogent splits its routes" behaviour.
	Alts []RouteAlt
}

// RouteAlt is one tied-best route alternative.
type RouteAlt struct {
	Next topology.ASN
	Site int
}

// Routes maps every AS to its selected route for an announcement.
type Routes struct {
	Ann *Announcement
	Per []Route // indexed by ASN
}

// offer is a route as it sits in an AS's adj-RIB-in.
type offer struct {
	site  int
	class Class // from the receiver's perspective
	next  topology.ASN
	path  []topology.ASN // [next, ..., origin] including poison stubs
	noExp []topology.ASN // no-export community bound to the receiver's exports
}

func containsASN(path []topology.ASN, a topology.ASN) bool {
	for _, p := range path {
		if p == a {
			return true
		}
	}
	return false
}

// Compute runs the path-vector simulation to convergence and returns
// every AS's selected route, under the same decision order as the tree
// engine: class, local preference, path length, tie-break. Deterministic
// in tb and pref.
func Compute(topo *topology.Topology, ann *Announcement, tb TieBreak, pref PrefFunc) *Routes {
	if pref == nil {
		pref = NoPref
	}
	n := len(topo.ASes)

	// nbIndex[a][b] = index of neighbor b in a's neighbor list, for O(1)
	// adj-RIB-in writes.
	nbIndex := make([]map[topology.ASN]int, n)
	for ai, as := range topo.ASes {
		m := make(map[topology.ASN]int, len(as.Neighbors))
		for i, nb := range as.Neighbors {
			m[nb.ASN] = i
		}
		nbIndex[ai] = m
	}

	// ribIn[a][i] is the offer from a's i'th neighbor; the final slot
	// holds the origin's direct announcement for site-neighbor ASes.
	ribIn := make([][]*offer, n)
	for ai, as := range topo.ASes {
		ribIn[ai] = make([]*offer, len(as.Neighbors)+1)
	}

	// Seed the direct announcements.
	for si := range ann.Sites {
		site := &ann.Sites[si]
		base := make([]topology.ASN, 0, len(site.Poison)+1)
		base = append(base, site.Poison...)
		base = append(base, ann.Origin)
		for _, nb := range site.Neighbors {
			if containsASN(base, nb.ASN) {
				continue // neighbor itself poisoned
			}
			cl := ClassProvider
			switch nb.Rel {
			case topology.RelCustomer:
				cl = ClassCustomer
			case topology.RelPeer:
				cl = ClassPeer
			}
			cand := &offer{site: si, class: cl, next: ann.Origin, path: base, noExp: nb.NoExportTo}
			slot := len(ribIn[nb.ASN]) - 1
			// Several sites may announce to the same neighbor; keep the
			// better (it would win selection anyway).
			if cur := ribIn[nb.ASN][slot]; cur == nil || betterOffer(tb, pref, nb.ASN, cand, cur) {
				ribIn[nb.ASN][slot] = cand
			}
		}
	}

	best := make([]*offer, n)
	selectBest := func(a topology.ASN) *offer {
		var sel *offer
		for _, o := range ribIn[a] {
			if o == nil || containsASN(o.path, a) {
				continue
			}
			if sel == nil || betterOffer(tb, pref, a, o, sel) {
				sel = o
			}
		}
		return sel
	}

	for round := 0; round < 2*n+10; round++ {
		changed := false
		for ai := range topo.ASes {
			a := topology.ASN(ai)
			sel := selectBest(a)
			if !sameOffer(sel, best[a]) {
				best[a] = sel
				changed = true
			}
			// Export (or withdraw) to every neighbor.
			for i, nb := range topo.ASes[a].Neighbors {
				var out *offer
				if sel != nil {
					exportable := sel.class == ClassCustomer ||
						(nb.Rel == topology.RelCustomer)
					if exportable && !containsASN(sel.noExp, nb.ASN) {
						cl := ClassProvider
						switch nb.Rel.Invert() { // a's rel from nb's perspective
						case topology.RelCustomer:
							cl = ClassCustomer
						case topology.RelPeer:
							cl = ClassPeer
						}
						path := make([]topology.ASN, 0, len(sel.path)+1)
						path = append(path, a)
						path = append(path, sel.path...)
						out = &offer{site: sel.site, class: cl, next: a, path: path}
					}
				}
				slot := nbIndex[nb.ASN][a]
				if !sameOffer(out, ribIn[nb.ASN][slot]) {
					ribIn[nb.ASN][slot] = out
					changed = true
				}
				_ = i
			}
		}
		if !changed {
			break
		}
	}

	res := &Routes{Ann: ann, Per: make([]Route, n)}
	for ai := range topo.ASes {
		s := best[ai]
		if s == nil {
			res.Per[ai] = Route{Site: -1, Next: topology.None, Class: ClassNone}
			continue
		}
		rt := Route{Site: s.site, Next: s.next, Class: s.class, Path: s.path}
		for _, o := range ribIn[ai] {
			if o == nil || containsASN(o.path, topology.ASN(ai)) {
				continue
			}
			if o.class == s.class && len(o.path) == len(s.path) &&
				pref(topology.ASN(ai), o.next) == pref(topology.ASN(ai), s.next) {
				rt.Alts = append(rt.Alts, RouteAlt{Next: o.next, Site: o.site})
			}
		}
		res.Per[ai] = rt
	}
	return res
}

func betterOffer(tb TieBreak, pref PrefFunc, a topology.ASN, cand, cur *offer) bool {
	if cand.class != cur.class {
		return cand.class < cur.class
	}
	if p1, p0 := pref(a, cand.next), pref(a, cur.next); p1 != p0 {
		return p1
	}
	if len(cand.path) != len(cur.path) {
		return len(cand.path) < len(cur.path)
	}
	return tb(a, cand.next) < tb(a, cur.next)
}

func sameOffer(a, b *offer) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.site != b.site || a.class != b.class || a.next != b.next || len(a.path) != len(b.path) {
		return false
	}
	for i := range a.path {
		if a.path[i] != b.path[i] {
			return false
		}
	}
	return true
}

// CatchmentShares returns, per site, the fraction of routed ASes whose
// selected route leads to that site — the anycast catchment the TE study
// measures.
func (r *Routes) CatchmentShares() []float64 {
	counts := make([]int, len(r.Ann.Sites))
	total := 0
	for _, rt := range r.Per {
		if rt.Site >= 0 {
			counts[rt.Site]++
			total++
		}
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
