// Package bgp computes interdomain routes over a generated topology.
//
// Two engines are provided. Routing.TreeTo computes, for one destination
// AS, the route every other AS selects under standard Gao–Rexford policy
// (prefer customer routes over peer routes over provider routes, then
// shortest AS path, then a deterministic tie-break) using a three-phase
// BFS — O(V+E) per destination, used for the bulk of the simulated
// Internet's prefixes. Compute (pathvector.go) is a synchronous
// path-vector simulation used for special announcements that need the full
// BGP machinery: anycast origination from multiple sites, AS-path
// poisoning, and no-export communities — the §6.1 traffic-engineering
// primitives.
package bgp

import (
	"sync"

	"revtr/internal/netsim/topology"
)

// Class ranks how a route was learned; smaller is more preferred.
type Class uint8

const (
	// ClassOrigin marks the destination AS itself.
	ClassOrigin Class = iota
	// ClassCustomer routes are learned from a customer.
	ClassCustomer
	// ClassPeer routes are learned from a settlement-free peer.
	ClassPeer
	// ClassProvider routes are learned from a provider.
	ClassProvider
	// ClassNone means no route (unreachable).
	ClassNone
)

func (c Class) String() string {
	switch c {
	case ClassOrigin:
		return "origin"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	}
	return "none"
}

// Tree is the routing tree toward one destination AS: every AS's selected
// next hop, route class, and AS-path length.
type Tree struct {
	Dst   topology.ASN
	Next  []topology.ASN // next-hop AS toward Dst; topology.None if none
	Class []Class
	Len   []uint8 // AS hops to Dst
}

// Path returns the AS path from src to the tree's destination, inclusive
// of both ends. Returns nil if src has no route.
func (tr *Tree) Path(src topology.ASN) []topology.ASN {
	if tr.Class[src] == ClassNone {
		return nil
	}
	path := make([]topology.ASN, 0, tr.Len[src]+1)
	for a := src; ; a = tr.Next[a] {
		path = append(path, a)
		if a == tr.Dst {
			return path
		}
		if len(path) > len(tr.Next) {
			panic("bgp: routing loop in tree")
		}
	}
}

// TieBreak deterministically orders otherwise-equal candidate next hops.
// It is keyed on (chooser, candidate) but not the destination, like a
// router-ID tie-break. The dynamics package swaps it to model churn.
type TieBreak func(chooser, candidate topology.ASN) uint64

// DefaultTieBreak builds a seeded tie-break function.
func DefaultTieBreak(seed int64) TieBreak {
	return func(chooser, candidate topology.ASN) uint64 {
		return mix(uint64(seed), uint64(chooser)<<32|uint64(uint32(candidate)))
	}
}

// PrefFunc reports whether chooser sets a higher local preference on
// routes learned from candidate than on other same-class routes. Local
// preference is evaluated before AS-path length (real BGP decision
// order), so a preferred neighbor's longer route wins — the
// traffic-engineering behaviour that makes roughly half of Internet AS
// paths asymmetric (§6.2).
type PrefFunc func(chooser, candidate topology.ASN) bool

// DefaultPref marks about frac of each AS's neighbors as preferred,
// deterministically in seed.
func DefaultPref(seed int64, frac float64) PrefFunc {
	cut := uint64(frac * float64(^uint64(0)))
	return func(chooser, candidate topology.ASN) bool {
		return mix(uint64(seed)^0xa5a5, uint64(chooser)<<32|uint64(uint32(candidate))) < cut
	}
}

// NoPref disables local-preference diversity.
func NoPref(_, _ topology.ASN) bool { return false }

// mix is splitmix64-style hashing.
func mix(a, b uint64) uint64 {
	x := a ^ b*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DefaultPrefFrac is the fraction of neighbor routes carrying elevated
// local preference under the default policy.
const DefaultPrefFrac = 0.15

// Routing computes and caches per-destination routing trees.
type Routing struct {
	topo *topology.Topology
	tb   TieBreak
	pref PrefFunc

	mu       sync.Mutex
	cache    map[topology.ASN]*Tree
	order    []topology.ASN
	maxCache int
	// generation invalidates the cache when dynamics change routing.
	generation uint64
}

// NewRouting creates a routing engine over topo with the default
// local-preference policy. maxCache bounds the number of cached trees
// (≥1); campaigns iterate destinations with high locality, so a small
// cache suffices.
func NewRouting(topo *topology.Topology, tb TieBreak, maxCache int) *Routing {
	if maxCache < 1 {
		maxCache = 64
	}
	return &Routing{
		topo:     topo,
		tb:       tb,
		pref:     DefaultPref(0x5eed, DefaultPrefFrac),
		cache:    make(map[topology.ASN]*Tree),
		maxCache: maxCache,
	}
}

// Topo returns the underlying topology.
func (r *Routing) Topo() *topology.Topology { return r.topo }

// Pref returns the active local-preference function.
func (r *Routing) Pref() PrefFunc {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pref
}

// TieBreakFn returns the active tie-break function.
func (r *Routing) TieBreakFn() TieBreak {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tb
}

// SetTieBreak replaces the tie-break (used by the dynamics module) and
// invalidates cached trees.
func (r *Routing) SetTieBreak(tb TieBreak) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tb = tb
	r.cache = make(map[topology.ASN]*Tree)
	r.order = r.order[:0]
	r.generation++
}

// SetPolicy replaces both the tie-break and the local-preference function
// and invalidates cached trees.
func (r *Routing) SetPolicy(tb TieBreak, pref PrefFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tb = tb
	r.pref = pref
	r.cache = make(map[topology.ASN]*Tree)
	r.order = r.order[:0]
	r.generation++
}

// Generation increments whenever routing changes; consumers use it to
// detect stale cached paths.
func (r *Routing) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.generation
}

// Invalidate drops all cached trees (after a topology change such as a
// link failure).
func (r *Routing) Invalidate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[topology.ASN]*Tree)
	r.order = r.order[:0]
	r.generation++
}

// TreeTo returns the routing tree toward dst, computing it on demand.
func (r *Routing) TreeTo(dst topology.ASN) *Tree {
	r.mu.Lock()
	if tr, ok := r.cache[dst]; ok {
		r.mu.Unlock()
		return tr
	}
	tb, pref := r.tb, r.pref
	r.mu.Unlock()

	tr := computeTree(r.topo, dst, tb, pref)

	r.mu.Lock()
	if len(r.order) >= r.maxCache {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.cache, evict)
	}
	r.cache[dst] = tr
	r.order = append(r.order, dst)
	r.mu.Unlock()
	return tr
}

// computeTree computes every AS's selected route toward dst under
// Gao–Rexford policy with local preference: routes are ranked by class
// (customer > peer > provider), then by local preference on the neighbor
// the route was learned from, then by AS-path length, then tie-break —
// the real BGP decision order, with local preference evaluated inside the
// relationship class (money still wins).
//
// Because providers are always generated before their customers
// (provider.ASN < customer.ASN — the topology guarantees an acyclic
// customer graph), each phase is a single pass in topological order:
//
//	Phase 1 (descending ASN): customer routes climb provider links.
//	Phase 2: peer routes — one peer hop off a neighbor's customer route.
//	Phase 3 (ascending ASN): provider routes descend customer links.
func computeTree(topo *topology.Topology, dst topology.ASN, tb TieBreak, pref PrefFunc) *Tree {
	n := len(topo.ASes)
	tr := &Tree{
		Dst:   dst,
		Next:  make([]topology.ASN, n),
		Class: make([]Class, n),
		Len:   make([]uint8, n),
	}
	for i := range tr.Next {
		tr.Next[i] = topology.None
		tr.Class[i] = ClassNone
	}
	tr.Class[dst] = ClassOrigin

	const noRoute = int32(1 << 20)
	// better reports whether candidate (pref=p1,len=l1,next=x1) beats the
	// current (p0,l0,x0) within one class.
	better := func(chooser topology.ASN, p1 bool, l1 int32, x1 topology.ASN, p0 bool, l0 int32, x0 topology.ASN) bool {
		if p1 != p0 {
			return p1
		}
		if l1 != l0 {
			return l1 < l0
		}
		return tb(chooser, x1) < tb(chooser, x0)
	}

	custLen := make([]int32, n)
	custPref := make([]bool, n)
	for i := range custLen {
		custLen[i] = noRoute
	}
	custLen[dst] = 0

	// Phase 1: customer routes, customers before providers.
	for xi := n - 1; xi >= 0; xi-- {
		x := topology.ASN(xi)
		if x == dst {
			continue
		}
		for _, nb := range topo.ASes[x].Neighbors {
			if nb.Rel != topology.RelCustomer || custLen[nb.ASN] == noRoute {
				continue
			}
			l := custLen[nb.ASN] + 1
			p := pref(x, nb.ASN)
			if custLen[x] == noRoute || better(x, p, l, nb.ASN, custPref[x], custLen[x], tr.Next[x]) {
				custLen[x] = l
				custPref[x] = p
				tr.Next[x] = nb.ASN
				tr.Class[x] = ClassCustomer
				tr.Len[x] = uint8(l)
			}
		}
	}

	// Phase 2: peer routes for ASes without customer routes.
	finalLen := make([]int32, n)
	copy(finalLen, custLen)
	for xi := range topo.ASes {
		x := topology.ASN(xi)
		if x == dst || custLen[x] != noRoute {
			continue
		}
		var selLen int32 = noRoute
		var selPref bool
		for _, nb := range topo.ASes[x].Neighbors {
			if nb.Rel != topology.RelPeer || custLen[nb.ASN] == noRoute {
				continue
			}
			l := custLen[nb.ASN] + 1
			p := pref(x, nb.ASN)
			if selLen == noRoute || better(x, p, l, nb.ASN, selPref, selLen, tr.Next[x]) {
				selLen, selPref = l, p
				tr.Next[x] = nb.ASN
				tr.Class[x] = ClassPeer
				tr.Len[x] = uint8(l)
			}
		}
		if selLen != noRoute {
			finalLen[x] = selLen
		}
	}

	// Phase 3: provider routes, providers before customers.
	provPref := make([]bool, n)
	for xi := 0; xi < n; xi++ {
		x := topology.ASN(xi)
		if x == dst || tr.Class[x] == ClassCustomer || tr.Class[x] == ClassPeer {
			continue
		}
		for _, nb := range topo.ASes[x].Neighbors {
			if nb.Rel != topology.RelProvider || finalLen[nb.ASN] == noRoute {
				continue
			}
			l := finalLen[nb.ASN] + 1
			p := pref(x, nb.ASN)
			if finalLen[x] == noRoute || better(x, p, l, nb.ASN, provPref[x], finalLen[x], tr.Next[x]) {
				finalLen[x] = l
				provPref[x] = p
				tr.Next[x] = nb.ASN
				tr.Class[x] = ClassProvider
				tr.Len[x] = uint8(l)
			}
		}
	}
	return tr
}
