package bgp

import (
	"testing"

	"revtr/internal/netsim/topology"
)

func testTopo(t testing.TB, n int) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultConfig(n)
	cfg.Seed = 11
	return topology.Generate(cfg)
}

func TestTreeReachability(t *testing.T) {
	topo := testTopo(t, 300)
	r := NewRouting(topo, DefaultTieBreak(1), 16)
	for _, dst := range []topology.ASN{0, 5, 50, 150, 299} {
		tr := r.TreeTo(dst)
		for a := range topo.ASes {
			if topology.ASN(a) == dst {
				if tr.Class[a] != ClassOrigin {
					t.Fatalf("dst %d class %v", dst, tr.Class[a])
				}
				continue
			}
			if tr.Class[a] == ClassNone {
				t.Fatalf("AS%d has no route to AS%d", a, dst)
			}
			if p := tr.Path(topology.ASN(a)); p == nil || p[len(p)-1] != dst {
				t.Fatalf("AS%d path to AS%d broken: %v", a, dst, p)
			}
		}
	}
}

// edgeDir classifies a traffic-path hop x->y by x's relationship with y:
// +1 up (y is x's provider), 0 flat (peer), -1 down (customer).
func edgeDir(topo *topology.Topology, x, y topology.ASN) int {
	nb := topo.ASes[x].Neighbor(y)
	if nb == nil {
		return -99
	}
	switch nb.Rel {
	case topology.RelProvider:
		return 1
	case topology.RelPeer:
		return 0
	}
	return -1
}

// TestTreeValleyFree: every selected path must match up* peer? down*.
func TestTreeValleyFree(t *testing.T) {
	topo := testTopo(t, 300)
	r := NewRouting(topo, DefaultTieBreak(1), 16)
	for dsti := 0; dsti < len(topo.ASes); dsti += 17 {
		dst := topology.ASN(dsti)
		tr := r.TreeTo(dst)
		for a := range topo.ASes {
			path := tr.Path(topology.ASN(a))
			if path == nil {
				continue
			}
			phase := 0 // 0=climbing, 1=peered, 2=descending
			for i := 0; i+1 < len(path); i++ {
				d := edgeDir(topo, path[i], path[i+1])
				switch d {
				case -99:
					t.Fatalf("path %v uses non-adjacent hop", path)
				case 1:
					if phase != 0 {
						t.Fatalf("valley in path %v (up after peer/down)", path)
					}
				case 0:
					if phase != 0 {
						t.Fatalf("second peer edge in path %v", path)
					}
					phase = 1
				case -1:
					phase = 2
				}
			}
		}
	}
}

func TestTreePathLengthsConsistent(t *testing.T) {
	topo := testTopo(t, 300)
	r := NewRouting(topo, DefaultTieBreak(1), 16)
	tr := r.TreeTo(42)
	for a := range topo.ASes {
		if p := tr.Path(topology.ASN(a)); p != nil {
			if len(p)-1 != int(tr.Len[a]) {
				t.Fatalf("AS%d: path len %d != Len %d", a, len(p)-1, tr.Len[a])
			}
		}
	}
}

// TestTreePrefersCustomer: if an AS has any customer route, its selection
// must be a customer route even when a shorter peer/provider path exists.
func TestTreeClassOrdering(t *testing.T) {
	topo := testTopo(t, 300)
	r := NewRouting(topo, DefaultTieBreak(1), 16)
	tr := r.TreeTo(77)
	for a, as := range topo.ASes {
		if tr.Class[a] == ClassNone || tr.Class[a] == ClassOrigin {
			continue
		}
		nb := as.Neighbor(tr.Next[a])
		if nb == nil {
			t.Fatalf("AS%d next hop not a neighbor", a)
		}
		wantRel := map[Class]topology.Rel{
			ClassCustomer: topology.RelCustomer,
			ClassPeer:     topology.RelPeer,
			ClassProvider: topology.RelProvider,
		}[tr.Class[a]]
		if nb.Rel != wantRel {
			t.Fatalf("AS%d class %v but next-hop rel %v", a, tr.Class[a], nb.Rel)
		}
	}
}

func TestTreeCacheEviction(t *testing.T) {
	topo := testTopo(t, 300)
	r := NewRouting(topo, DefaultTieBreak(1), 2)
	t1 := r.TreeTo(1)
	r.TreeTo(2)
	r.TreeTo(3) // evicts tree 1
	t1b := r.TreeTo(1)
	if t1 == t1b {
		t.Error("expected recomputation after eviction")
	}
	if t1.Next[100] != t1b.Next[100] {
		t.Error("recomputed tree differs")
	}
}

func TestSetTieBreakInvalidates(t *testing.T) {
	topo := testTopo(t, 300)
	r := NewRouting(topo, DefaultTieBreak(1), 16)
	g0 := r.Generation()
	r.TreeTo(1)
	r.SetTieBreak(DefaultTieBreak(2))
	if r.Generation() == g0 {
		t.Error("generation did not advance")
	}
}

// TestPathVectorMatchesTree: a single-site announcement attached exactly
// like an existing AS must reproduce the tree computation.
func TestPathVectorMatchesTree(t *testing.T) {
	topo := testTopo(t, 300)
	tb := DefaultTieBreak(1)
	r := NewRouting(topo, tb, 16)
	// Local preference hashes on neighbor identity; the clone origin has
	// a different ASN than dst, so equivalence is checked pref-free.
	r.SetPolicy(tb, NoPref)
	for _, dst := range []topology.ASN{3, 60, 200} {
		tr := r.TreeTo(dst)
		site := AnnSite{Name: "clone"}
		for _, nb := range topo.ASes[dst].Neighbors {
			site.Neighbors = append(site.Neighbors, AnnNeighbor{
				ASN: nb.ASN,
				Rel: nb.Rel.Invert(), // origin's rel from the neighbor's view
			})
		}
		ann := &Announcement{Origin: topology.ASN(len(topo.ASes)), Sites: []AnnSite{site}}
		routes := Compute(topo, ann, tb, NoPref)
		for a := range topo.ASes {
			if topology.ASN(a) == dst {
				continue // dst competes with the clone announcement; skip
			}
			rt := routes.Per[a]
			if (rt.Class == ClassNone) != (tr.Class[a] == ClassNone) {
				t.Fatalf("dst %d AS%d: reachability mismatch", dst, a)
			}
			if rt.Class == ClassNone {
				continue
			}
			if rt.Class != tr.Class[a] {
				t.Fatalf("dst %d AS%d: class %v vs tree %v", dst, a, rt.Class, tr.Class[a])
			}
			if len(rt.Path) != int(tr.Len[a]) {
				t.Fatalf("dst %d AS%d: pathlen %d vs tree %d", dst, a, len(rt.Path), tr.Len[a])
			}
		}
	}
}

func findStubWithProviders(topo *topology.Topology, k int) *topology.AS {
	for _, as := range topo.ASes {
		if as.Tier != topology.Stub {
			continue
		}
		n := 0
		for _, nb := range as.Neighbors {
			if nb.Rel == topology.RelProvider {
				n++
			}
		}
		if n >= k {
			return as
		}
	}
	return nil
}

func TestPoisoningDivertsTraffic(t *testing.T) {
	topo := testTopo(t, 300)
	tb := DefaultTieBreak(1)
	stub := findStubWithProviders(topo, 2)
	if stub == nil {
		t.Skip("no multihomed stub")
	}
	var provs []topology.ASN
	for _, nb := range stub.Neighbors {
		if nb.Rel == topology.RelProvider {
			provs = append(provs, nb.ASN)
		}
	}
	origin := topology.ASN(len(topo.ASes))
	site := AnnSite{Name: "s", Neighbors: []AnnNeighbor{
		{ASN: provs[0], Rel: topology.RelCustomer},
		{ASN: provs[1], Rel: topology.RelCustomer},
	}}
	base := Compute(topo, &Announcement{Origin: origin, Sites: []AnnSite{site}}, tb, nil)
	// Find a transit AS that carries traffic (appears as an intermediate).
	carrier := topology.ASN(topology.None)
	for a := range topo.ASes {
		rt := base.Per[a]
		if len(rt.Path) >= 2 && rt.Path[0] != provs[0] && rt.Path[0] != provs[1] {
			carrier = rt.Path[0]
			break
		}
	}
	if carrier == topology.None {
		t.Skip("no intermediate carrier found")
	}
	poisoned := site
	poisoned.Poison = []topology.ASN{carrier}
	res := Compute(topo, &Announcement{Origin: origin, Sites: []AnnSite{poisoned}}, tb, nil)
	if res.Per[carrier].Site != -1 {
		t.Fatalf("poisoned AS%d still has a route", carrier)
	}
	for a := range topo.ASes {
		rt := res.Per[a]
		if rt.Site < 0 {
			continue
		}
		// The announced path ends with the poison stub [poison..., origin];
		// only the hops before it are actually traversed.
		real := rt.Path[:len(rt.Path)-1-len(poisoned.Poison)]
		for _, hop := range real {
			if hop == carrier {
				t.Fatalf("AS%d still routes through poisoned AS%d: %v", a, carrier, rt.Path)
			}
		}
	}
}

func TestNoExportCommunity(t *testing.T) {
	topo := testTopo(t, 300)
	tb := DefaultTieBreak(1)
	stub := findStubWithProviders(topo, 1)
	var prov topology.ASN
	for _, nb := range stub.Neighbors {
		if nb.Rel == topology.RelProvider {
			prov = nb.ASN
			break
		}
	}
	origin := topology.ASN(len(topo.ASes))
	// Find a neighbor of prov that, without communities, routes via prov.
	base := Compute(topo, &Announcement{Origin: origin, Sites: []AnnSite{{
		Neighbors: []AnnNeighbor{{ASN: prov, Rel: topology.RelCustomer}},
	}}}, tb, nil)
	var blocked topology.ASN = topology.None
	for _, nb := range topo.ASes[prov].Neighbors {
		if base.Per[nb.ASN].Next == prov {
			blocked = nb.ASN
			break
		}
	}
	if blocked == topology.None {
		t.Skip("no neighbor routes via prov")
	}
	res := Compute(topo, &Announcement{Origin: origin, Sites: []AnnSite{{
		Neighbors: []AnnNeighbor{{ASN: prov, Rel: topology.RelCustomer, NoExportTo: []topology.ASN{blocked}}},
	}}}, tb, nil)
	if res.Per[blocked].Next == prov {
		t.Fatalf("AS%d still learns via AS%d despite no-export", blocked, prov)
	}
}

func TestAnycastCatchments(t *testing.T) {
	topo := testTopo(t, 300)
	tb := DefaultTieBreak(1)
	// Two sites at two different transit providers.
	transits := topo.ASesByTier(topology.Transit)
	if len(transits) < 2 {
		t.Skip("not enough transit ASes")
	}
	origin := topology.ASN(len(topo.ASes))
	ann := &Announcement{Origin: origin, Sites: []AnnSite{
		{Name: "a", Neighbors: []AnnNeighbor{{ASN: transits[0], Rel: topology.RelCustomer}}},
		{Name: "b", Neighbors: []AnnNeighbor{{ASN: transits[len(transits)/2], Rel: topology.RelCustomer}}},
	}}
	res := Compute(topo, ann, tb, nil)
	shares := res.CatchmentShares()
	if len(shares) != 2 {
		t.Fatal("share count")
	}
	if shares[0] == 0 || shares[1] == 0 {
		t.Fatalf("degenerate catchments: %v", shares)
	}
	if shares[0]+shares[1] < 0.999 {
		t.Fatalf("shares do not sum to 1: %v", shares)
	}
	// Valley-free for path-vector routes too.
	for a := range topo.ASes {
		rt := res.Per[a]
		if rt.Class == ClassNone {
			continue
		}
		full := append([]topology.ASN{topology.ASN(a)}, rt.Path...)
		phase := 0
		for i := 0; i+1 < len(full); i++ {
			if full[i+1] == origin || containsASN(ann.Sites[rt.Site].Poison, full[i+1]) {
				break
			}
			d := edgeDir(topo, full[i], full[i+1])
			switch d {
			case -99:
				t.Fatalf("AS%d path uses non-adjacent hop: %v", a, full)
			case 1:
				if phase != 0 {
					t.Fatalf("valley in %v", full)
				}
			case 0:
				if phase != 0 {
					t.Fatalf("double peer in %v", full)
				}
				phase = 1
			case -1:
				phase = 2
			}
		}
	}
}

func TestComputeDeterministic(t *testing.T) {
	topo := testTopo(t, 300)
	tb := DefaultTieBreak(9)
	origin := topology.ASN(len(topo.ASes))
	ann := &Announcement{Origin: origin, Sites: []AnnSite{{
		Neighbors: []AnnNeighbor{{ASN: 20, Rel: topology.RelCustomer}},
	}}}
	r1 := Compute(topo, ann, tb, nil)
	r2 := Compute(topo, ann, tb, nil)
	for a := range topo.ASes {
		if r1.Per[a].Next != r2.Per[a].Next || r1.Per[a].Site != r2.Per[a].Site {
			t.Fatalf("nondeterministic at AS%d", a)
		}
	}
}

func BenchmarkTreeTo(b *testing.B) {
	topo := testTopo(b, 1000)
	r := NewRouting(topo, DefaultTieBreak(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Invalidate()
		r.TreeTo(topology.ASN(i % len(topo.ASes)))
	}
}
