package dynamics

import (
	"testing"

	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/topology"
)

func fabricFor(t testing.TB) *fabric.Fabric {
	t.Helper()
	cfg := topology.DefaultConfig(300)
	cfg.Seed = 17
	topo := topology.Generate(cfg)
	routing := bgp.NewRouting(topo, bgp.DefaultTieBreak(17), 64)
	return fabric.New(topo, routing, 17)
}

// pathsAcross samples forward paths between fixed host pairs.
func pathsAcross(f *fabric.Fabric, n int) [][]topology.RouterID {
	var out [][]topology.RouterID
	hosts := f.Topo.Hosts
	for i := 0; i < n; i++ {
		a := &hosts[(i*37)%len(hosts)]
		b := &hosts[(i*101+53)%len(hosts)]
		if a.AS == b.AS {
			continue
		}
		out = append(out, f.ForwardRouterPath(a.Router, b.Addr, a.Addr, uint64(i)))
	}
	return out
}

func TestChurnChangesSomePaths(t *testing.T) {
	f := fabricFor(t)
	c := New(f, 17)
	before := pathsAcross(f, 200)
	c.Step(0.30, 0)
	after := pathsAcross(f, 200)
	changed := 0
	for i := range before {
		if len(before[i]) != len(after[i]) {
			changed++
			continue
		}
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				changed++
				break
			}
		}
	}
	if changed == 0 {
		t.Error("heavy churn changed no paths")
	}
	t.Logf("churn(0.3) changed %d/%d sampled paths", changed, len(before))
}

func TestNoChurnNoChanges(t *testing.T) {
	f := fabricFor(t)
	c := New(f, 17)
	before := pathsAcross(f, 100)
	c.Step(0, 0) // flushes caches but changes nothing
	after := pathsAcross(f, 100)
	for i := range before {
		if len(before[i]) != len(after[i]) {
			t.Fatal("path changed without churn")
		}
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatal("path changed without churn")
			}
		}
	}
}

func TestLinkFailuresPreferParallel(t *testing.T) {
	f := fabricFor(t)
	c := New(f, 17)
	c.Step(0, 50)
	for _, li := range failedLinks(f) {
		l := &f.Topo.Links[li]
		r0 := f.Topo.Ifaces[l.I0].Router
		r1 := f.Topo.Ifaces[l.I1].Router
		nb := f.Topo.ASes[f.Topo.Routers[r0].AS].Neighbor(f.Topo.Routers[r1].AS)
		up := 0
		for _, ll := range nb.Link {
			if !f.Topo.Links[ll].Down {
				up++
			}
		}
		if up == 0 {
			t.Fatal("adjacency fully severed")
		}
	}
	t.Logf("failed links: %d", c.DownCount())
}

func failedLinks(f *fabric.Fabric) []topology.LinkID {
	var out []topology.LinkID
	for li := range f.Topo.Links {
		if f.Topo.Links[li].Down {
			out = append(out, topology.LinkID(li))
		}
	}
	return out
}

func TestRepairEventuallyRestores(t *testing.T) {
	f := fabricFor(t)
	c := New(f, 17)
	c.Step(0, 30)
	n0 := c.DownCount()
	for i := 0; i < 20 && c.DownCount() > 0; i++ {
		c.Step(0, 0)
	}
	if n0 > 0 && c.DownCount() != 0 {
		t.Errorf("links never repaired: %d still down", c.DownCount())
	}
}
