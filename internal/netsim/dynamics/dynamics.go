// Package dynamics introduces routing churn into a running simulation:
// per-AS tie-break re-rolls (modelling policy and IGP changes that shift
// equal-preference route choices) and interdomain link failures/repairs.
// The atlas staleness study (Fig 9d) and the caching insight (1.4) depend
// on paths changing at a realistic, low rate: the paper cites >90% of
// paths still valid after 10 days.
package dynamics

import (
	"math/rand"

	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/topology"
)

// Churn drives routing changes on a fabric.
type Churn struct {
	f    *fabric.Fabric
	rng  *rand.Rand
	seed int64

	epochs    []uint32
	downLinks []topology.LinkID
}

// New creates a churn driver and installs its tie-break function into the
// fabric's routing engine.
func New(f *fabric.Fabric, seed int64) *Churn {
	c := &Churn{
		f:      f,
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
		epochs: make([]uint32, len(f.Topo.ASes)),
	}
	f.Routing.SetPolicy(c.TieBreak(), c.Pref())
	return c
}

// TieBreak returns a tie-break keyed on the chooser's current epoch, so
// bumping an AS's epoch re-rolls its equal-preference route choices.
func (c *Churn) TieBreak() bgp.TieBreak {
	base := bgp.DefaultTieBreak(c.seed)
	return func(chooser, candidate topology.ASN) uint64 {
		return base(chooser, candidate) ^ uint64(c.epochs[chooser])*0x9e3779b97f4a7c15
	}
}

// Pref returns a local-preference function keyed on the chooser's epoch,
// so bumping an AS's epoch can flip which neighbors it prefers — the
// policy-change component of path churn.
func (c *Churn) Pref() bgp.PrefFunc {
	cut := uint64(bgp.DefaultPrefFrac * float64(^uint64(0)))
	return func(chooser, candidate topology.ASN) bool {
		h := uint64(c.seed) ^ uint64(chooser)<<32 | uint64(uint32(candidate))
		h ^= uint64(c.epochs[chooser]) * 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		return h < cut
	}
}

// Step applies one churn round: re-roll tie-breaks for fracASes of ASes
// and fail linkFailures random interdomain links (repairing previously
// failed ones first with probability 1/2 each). Invalidates all cached
// forwarding state.
func (c *Churn) Step(fracASes float64, linkFailures int) {
	n := int(fracASes * float64(len(c.epochs)))
	for i := 0; i < n; i++ {
		c.epochs[c.rng.Intn(len(c.epochs))]++
	}
	// Repair half of the currently failed links.
	var still []topology.LinkID
	for _, l := range c.downLinks {
		if c.rng.Intn(2) == 0 {
			c.f.Topo.Links[l].Down = false
		} else {
			still = append(still, l)
		}
	}
	c.downLinks = still
	for i := 0; i < linkFailures; i++ {
		l := topology.LinkID(c.rng.Intn(len(c.f.Topo.Links)))
		lk := &c.f.Topo.Links[l]
		if !lk.Inter || lk.Down {
			continue
		}
		// Only fail links of adjacencies with another live parallel link,
		// so the data plane reroutes at router level instead of
		// blackholing (the BGP layer keeps the AS edge up).
		r0 := c.f.Topo.Ifaces[lk.I0].Router
		r1 := c.f.Topo.Ifaces[lk.I1].Router
		as0 := c.f.Topo.ASes[c.f.Topo.Routers[r0].AS]
		nb := as0.Neighbor(c.f.Topo.Routers[r1].AS)
		if nb == nil {
			continue
		}
		up := 0
		for _, ll := range nb.Link {
			if !c.f.Topo.Links[ll].Down {
				up++
			}
		}
		if up < 2 {
			continue
		}
		lk.Down = true
		c.downLinks = append(c.downLinks, l)
	}
	// Re-install the policy (epochs changed) and flush caches.
	c.f.Routing.SetPolicy(c.TieBreak(), c.Pref())
	c.f.InvalidateRoutes()
}

// DownCount reports how many links are currently failed.
func (c *Churn) DownCount() int { return len(c.downLinks) }
