// The open system end to end (Appendix A): start the Reverse Traceroute
// service over a simulated Internet, create a user, register a source
// (bootstrap), run measurements through the REST API, and read them back —
// all over real HTTP on a loopback port.
//
//	go run ./examples/openservice
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"revtr"
	"revtr/internal/service"
)

func main() {
	fmt.Println("building a 400-AS simulated Internet...")
	cfg := revtr.DefaultConfig(400)
	cfg.Seed = 21
	cfg.Topology.Seed = 21
	dep := revtr.Build(cfg)

	reg := service.NewRegistry(service.NewDeploymentBackend(dep), "admin-secret")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, service.NewAPI(reg)) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening at %s\n\n", base)

	// 1. The operator adds a user.
	var user service.User
	mustPost(base+"/api/v1/users", map[string]string{"X-Admin-Key": "admin-secret"},
		map[string]any{"name": "alice", "maxPerDay": 100}, &user)
	fmt.Printf("created user %q (key %s...)\n", user.Name, user.APIKey[:8])

	// 2. The user registers their host as a source; the service
	// bootstraps it (RR reachability check + traceroute atlas).
	srcHost := dep.PickSourceHost(0)
	var src service.SourceInfo
	mustPost(base+"/api/v1/sources", map[string]string{"X-API-Key": user.APIKey},
		map[string]any{"addr": srcHost.Addr.String()}, &src)
	fmt.Printf("registered source %s: atlas of %d traceroutes\n\n", src.Addr, src.AtlasSize)

	// 3. Measure reverse paths from three arbitrary destinations.
	var dsts []string
	for _, h := range dep.OnePerPrefix() {
		if h.AS != srcHost.AS {
			dsts = append(dsts, h.Addr.String())
		}
		if len(dsts) == 3 {
			break
		}
	}
	var measurements []service.Measurement
	mustPost(base+"/api/v1/revtr", map[string]string{"X-API-Key": user.APIKey},
		map[string]any{"src": src.Addr, "dsts": dsts}, &measurements)
	for _, m := range measurements {
		fmt.Printf("measurement %d: %s -> %s  status=%s  probes=%d\n",
			m.ID, m.Dst, m.Src, m.Status, m.Probes)
		for i, hop := range m.Hops {
			fmt.Printf("  %2d  %-15s  %s\n", i, hop.Addr, hop.Technique)
		}
	}

	// 4. Read one measurement back from the archive.
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/revtr/%d", base, measurements[0].ID))
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\narchived measurement %d: %d bytes of JSON\n", measurements[0].ID, len(raw))
}

func mustPost(url string, headers map[string]string, body, out any) {
	b, _ := json.Marshal(body)
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
