// Traffic engineering with reverse traceroutes (§6.1): anycast a prefix
// from three sites, use reverse path measurements to find the transit
// network carrying routes to a high-latency site, and steer it away with
// BGP poisoning — the PEERING case study in miniature.
//
//	go run ./examples/trafficengineering
package main

import (
	"context"

	"fmt"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

func main() {
	fmt.Println("building a 500-AS simulated Internet...")
	cfg := revtr.DefaultConfig(500)
	cfg.Seed = 7
	cfg.Topology.Seed = 7
	dep := revtr.Build(cfg)

	// Anycast a testbed prefix from three sites at different upstreams.
	transits := dep.Topo.ASesByTier(topology.Transit)
	colos := dep.Topo.ASesByTier(topology.Colo)
	ups := []topology.ASN{transits[0], transits[len(transits)/2], colos[0]}
	names := []string{"site-A", "site-B", "site-C"}
	ann := &bgp.Announcement{
		Prefix: ipv4.MustParsePrefix("198.51.100.0/24"),
		Origin: topology.ASN(len(dep.Topo.ASes)),
	}
	group := &fabric.AnycastGroup{
		Prefix:      ann.Prefix,
		ServiceAddr: ipv4.MustParseAddr("198.51.100.1"),
	}
	for i, up := range ups {
		ann.Sites = append(ann.Sites, bgp.AnnSite{
			Name:      names[i],
			Neighbors: []bgp.AnnNeighbor{{ASN: up, Rel: topology.RelCustomer}},
		})
		group.Sites = append(group.Sites, fabric.AnycastSite{
			Name: names[i], Via: up, Router: dep.Topo.ASes[up].Borders[0],
		})
	}

	apply := func() *bgp.Routes {
		routes := bgp.Compute(dep.Topo, ann, dep.Routing.TieBreakFn(), dep.Routing.Pref())
		group.Routes = routes
		dep.Fabric.ClearAnycast()
		dep.Fabric.AddAnycast(group)
		return routes
	}

	catchments := func() map[string]int {
		out := map[string]int{}
		for i, h := range dep.OnePerPrefix() {
			if i >= 300 {
				break
			}
			pr := dep.Prober.Ping(measure.AgentFromHost(dep.Topo, h), group.ServiceAddr)
			if pr.Site >= 0 {
				out[names[pr.Site]]++
			}
		}
		return out
	}

	apply()
	fmt.Printf("baseline catchments: %v\n", catchments())

	// Measure reverse paths with the anycast address as the source — the
	// capability the paper argues only Reverse Traceroute provides.
	src := dep.SourceFromAgent(measure.Agent{
		Name: "anycast", Addr: group.ServiceAddr,
		Router: group.Sites[0].Router, AS: ups[0], Site: 0,
	})
	eng := dep.Engine(core.Revtr20Options())
	carriers := map[topology.ASN]int{}
	measured := 0
	for i, h := range dep.OnePerPrefix() {
		if i >= 120 {
			break
		}
		res := eng.MeasureReverse(context.Background(), src, h.Addr)
		if res.Status != core.StatusComplete {
			continue
		}
		measured++
		for _, asn := range ip2as.ASPath(dep.Mapper, res.Addrs()) {
			if dep.Topo.ASes[asn].Tier == topology.Transit || dep.Topo.ASes[asn].Tier == topology.Tier1 {
				carriers[asn]++
			}
		}
	}
	var carrier topology.ASN = topology.None
	best := 0
	for asn, n := range carriers {
		if n > best && asn != ups[0] && asn != ups[1] && asn != ups[2] {
			carrier, best = asn, n
		}
	}
	fmt.Printf("measured %d reverse paths; dominant carrier: AS%d (on %d paths)\n",
		measured, carrier, best)
	if carrier == topology.None {
		fmt.Println("no carrier found; done")
		return
	}

	// Steer the carrier away from the site it currently routes to by
	// poisoning it on that site's announcement, then re-measure.
	routes := apply()
	target := routes.Per[carrier].Site
	if target < 0 {
		fmt.Println("carrier has no route; done")
		return
	}
	fmt.Printf("the carrier routes to %s; poisoning AS%d on that announcement...\n",
		names[target], carrier)
	ann.Sites[target].Poison = []topology.ASN{carrier}
	apply()
	fmt.Printf("catchments after poisoning: %v\n", catchments())
	fmt.Println("(the carrier's routes, and everything behind them, shifted to the other sites)")
}
