// One virtual day of operating the Reverse Traceroute service: routes
// churn hour by hour, NDT speed tests trigger opportunistic measurements
// (Appendix A), a user issues on-demand batches against their quota, and
// at "midnight" the traceroute atlas is refreshed with the Random++
// replacement policy (Appendix D.2) — retiring entries that were never
// intersected and re-measuring the useful ones.
//
//	go run ./examples/oneday
package main

import (
	"context"

	"fmt"
	"math/rand"

	"revtr"
	"revtr/internal/netsim/dynamics"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/service"
)

func main() {
	fmt.Println("building a 400-AS simulated Internet...")
	cfg := revtr.DefaultConfig(400)
	cfg.Seed = 15
	cfg.Topology.Seed = 15
	dep := revtr.Build(cfg)
	churn := dynamics.New(dep.Fabric, 15)
	rng := rand.New(rand.NewSource(15))

	reg := service.NewRegistry(service.NewDeploymentBackend(dep), "admin")
	admin, _ := reg.AddUser("admin", "alice", 4, 500)

	// Register one source through the service (bootstrap builds atlas).
	srcHost := dep.PickSourceHost(0)
	srcInfo, err := reg.RegisterSource(admin.APIKey, srcHost.Addr, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("source %s registered; atlas %d traceroutes\n\n", srcInfo.Addr, srcInfo.AtlasSize)

	dests := dep.OnePerPrefix()
	pick := func() ipv4.Addr {
		for {
			h := dests[rng.Intn(len(dests))]
			if h.AS != srcHost.AS {
				return h.Addr
			}
		}
	}

	var ndtRuns, userRuns, complete int
	for hour := 0; hour < 24; hour++ {
		// Routing drifts a little every hour.
		churn.Step(0.01, 1)
		dep.Prober.SetNow(int64(hour) * 3_600_000_000)

		// NDT speed tests arrive (the M-Lab hook).
		for i := 0; i < 5; i++ {
			if m, err := reg.NDT(context.Background(), srcHost.Addr, pick()); err == nil && m != nil {
				ndtRuns++
				if m.Status == "complete" {
					complete++
				}
			}
		}
		// The user runs an on-demand batch.
		for i := 0; i < 3; i++ {
			if m, err := reg.Measure(context.Background(), admin.APIKey, srcHost.Addr, pick()); err == nil {
				userRuns++
				if m.Status == "complete" {
					complete++
				}
			}
		}
		if hour%6 == 5 {
			st := reg.Stats()
			fmt.Printf("hour %2d: %d measurements archived (links down: %d)\n",
				hour+1, st.Measurements, churn.DownCount())
		}
	}

	fmt.Printf("\nday's traffic: %d NDT-triggered + %d on-demand, %d complete\n",
		ndtRuns, userRuns, complete)

	// Midnight: the service's daily maintenance refreshes every source's
	// atlas (Random++: entries intersected during the day are kept and
	// re-measured; the rest are replaced) and rolls the quotas.
	useful, total, _ := reg.UsefulEntries(srcHost.Addr)
	sizes := reg.DailyMaintenance()
	fmt.Printf("midnight atlas refresh: %d entries (%d marked useful) -> %d entries, all fresh\n",
		total, useful, sizes[srcHost.Addr.String()])
}
