// Quickstart: build a small simulated Internet, register a Reverse
// Traceroute source, and measure reverse paths from a few uncontrolled
// destinations back to it — then compare one against the ground-truth
// reverse path that only the simulator can see.
//
//	go run ./examples/quickstart
package main

import (
	"context"

	"fmt"

	"revtr"
	"revtr/internal/core"
)

func main() {
	// Build the world: topology, BGP routes, vantage points, alias and
	// IP-to-AS datasets, ingress survey — everything the paper's system
	// operates (Appendix A).
	fmt.Println("building a 500-AS simulated Internet (with ingress survey)...")
	cfg := revtr.DefaultConfig(500)
	dep := revtr.Build(cfg)
	fmt.Printf("  %s\n", dep.Topo.Stats())
	fmt.Printf("  %d vantage point sites, %d atlas probes\n\n",
		len(dep.SiteAgents), len(dep.Probes))

	// Register a source: this is the user-visible operation of the open
	// system — it bootstraps the source's traceroute atlas and the §4.2
	// RR-alias measurements.
	srcHost := dep.PickSourceHost(0)
	fmt.Printf("registering source %s (AS%d)...\n", srcHost.Addr, srcHost.AS)
	src := dep.NewSource(srcHost)
	fmt.Printf("  atlas: %d traceroutes\n\n", src.Atlas.Size())

	// Measure reverse paths with the revtr 2.0 engine.
	eng := dep.Engine(core.Revtr20Options())
	dests := dep.OnePerPrefix()
	shown := 0
	for _, dst := range dests {
		if dst.AS == srcHost.AS {
			continue
		}
		res := eng.MeasureReverse(context.Background(), src, dst.Addr)
		if res.Status != core.StatusComplete {
			continue
		}
		shown++
		fmt.Printf("reverse path from %s (AS%d) back to %s:\n", dst.Addr, dst.AS, srcHost.Addr)
		for i, hop := range res.Hops {
			star := ""
			if hop.SuspectBefore {
				star = "  (* possible missing hop before)"
			}
			fmt.Printf("  %2d  %-15s  via %-12s%s\n", i, hop.Addr, hop.Tech, star)
		}
		fmt.Printf("  probes used: %d, virtual duration: %.1fs, symmetry assumptions: %d\n\n",
			res.Probes.Total(), float64(res.DurationUS)/1e6, res.SymAssumed)

		if shown == 1 {
			// Only the simulator can do this part: compare against truth.
			truth := dep.TrueReversePath(dst, srcHost.Addr)
			fmt.Println("  ground-truth reverse routers (simulator's omniscient view):")
			fmt.Print("   ")
			for _, r := range truth {
				fmt.Printf(" r%d(AS%d)", r, dep.Topo.Routers[r].AS)
			}
			fmt.Print("\n\n")
		}
		if shown >= 3 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("no complete measurements — try a different seed")
	}
}
