// Path asymmetry at scale (§6.2): measure forward and reverse paths
// between vantage point sources and one destination per routed prefix,
// then quantify how often Internet paths are asymmetric and which
// networks are most often involved — the study that only becomes possible
// once reverse paths are measurable at scale.
//
//	go run ./examples/asymmetry
package main

import (
	"context"

	"fmt"
	"sort"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/ip2as"
	"revtr/internal/netsim/topology"
)

func main() {
	fmt.Println("building a 600-AS simulated Internet...")
	cfg := revtr.DefaultConfig(600)
	cfg.Seed = 9
	cfg.Topology.Seed = 9
	dep := revtr.Build(cfg)

	src := dep.SourceFromAgent(dep.SiteAgents[0])
	eng := dep.Engine(core.Revtr20Options())

	type pairStat struct {
		fwdLen, shared int
	}
	var (
		pairs     []pairStat
		symmetric int
		total     int
		involved  = map[topology.ASN]int{}
		asymTotal = 0
	)
	for i, dst := range dep.OnePerPrefix() {
		if i >= 400 || dst.AS == src.Agent.AS {
			continue
		}
		fwd := dep.Prober.Traceroute(src.Agent, dst.Addr)
		rev := eng.MeasureReverse(context.Background(), src, dst.Addr)
		if !fwd.ReachedDst || rev.Status != core.StatusComplete {
			continue
		}
		fAS := ip2as.ASPath(dep.Mapper, fwd.HopAddrs())
		rAS := ip2as.ASPath(dep.Mapper, rev.Addrs())
		rSet := map[topology.ASN]bool{}
		for _, a := range rAS {
			rSet[a] = true
		}
		shared := 0
		for _, a := range fAS {
			if rSet[a] {
				shared++
			}
		}
		total++
		pairs = append(pairs, pairStat{fwdLen: len(fAS), shared: shared})
		if shared == len(fAS) && len(fAS) == len(rAS) {
			symmetric++
			continue
		}
		asymTotal++
		fSet := map[topology.ASN]bool{}
		for _, a := range fAS {
			fSet[a] = true
		}
		for _, a := range fAS {
			if !rSet[a] {
				involved[a]++
			}
		}
		for _, a := range rAS {
			if !fSet[a] {
				involved[a]++
			}
		}
	}

	fmt.Printf("\nbidirectional pairs measured: %d\n", total)
	fmt.Printf("AS-level symmetric: %d (%.0f%%)  — the paper found 53%%\n",
		symmetric, 100*float64(symmetric)/float64(total))

	// Which networks appear most often in asymmetric routing?
	type row struct {
		asn  topology.ASN
		n    int
		cone int
		tier topology.Tier
	}
	var rows []row
	for asn, n := range involved {
		rows = append(rows, row{asn, n, dep.Topo.ASes[asn].ConeSize, dep.Topo.ASes[asn].Tier})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Println("\ntop networks involved in asymmetry (cf. Table 7):")
	fmt.Println("  rank  ASN      tier     prevalence  customer-cone")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-4d  AS%-6d %-8s %.2f        %d\n",
			i+1, r.asn, r.tier, float64(r.n)/float64(asymTotal), r.cone)
	}
}
