package revtr_test

// The benchmark harness regenerates every table and figure of the paper
// (DESIGN.md §3 maps experiment IDs to paper artifacts). Each
// BenchmarkExp_* drives the corresponding experiment end to end:
//
//	go test -bench=Exp_Table4 -benchtime=1x
//	go test -bench=. -benchmem
//
// Experiments share deployments and workload caches, so the first
// iteration of a family pays the build cost and later ones measure the
// incremental analysis. Micro-benchmarks for the system's hot paths
// (measurement, routing, forwarding) follow at the bottom.

import (
	"sync/atomic"

	"context"

	"io"
	"testing"
	"time"

	"revtr"
	"revtr/internal/campaign"
	"revtr/internal/core"
	"revtr/internal/eval"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

func benchExp(b *testing.B, id string) {
	b.Helper()
	e, ok := eval.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	s := eval.SmallScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(context.Background(), s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One bench per paper artifact.

func BenchmarkExp_Table2(b *testing.B)     { benchExp(b, "table2") }
func BenchmarkExp_Table3(b *testing.B)     { benchExp(b, "table3") }
func BenchmarkExp_Table4(b *testing.B)     { benchExp(b, "table4") }
func BenchmarkExp_Table5(b *testing.B)     { benchExp(b, "table5") }
func BenchmarkExp_Table6(b *testing.B)     { benchExp(b, "table6") }
func BenchmarkExp_Table7(b *testing.B)     { benchExp(b, "table7") }
func BenchmarkExp_Fig5a(b *testing.B)      { benchExp(b, "fig5a") }
func BenchmarkExp_Fig5b(b *testing.B)      { benchExp(b, "fig5b") }
func BenchmarkExp_Fig5c(b *testing.B)      { benchExp(b, "fig5c") }
func BenchmarkExp_Fig6(b *testing.B)       { benchExp(b, "fig6") }
func BenchmarkExp_Fig7(b *testing.B)       { benchExp(b, "fig7") }
func BenchmarkExp_Fig8a(b *testing.B)      { benchExp(b, "fig8a") }
func BenchmarkExp_Fig8b(b *testing.B)      { benchExp(b, "fig8b") }
func BenchmarkExp_Fig9a(b *testing.B)      { benchExp(b, "fig9a") }
func BenchmarkExp_Fig9b(b *testing.B)      { benchExp(b, "fig9b") }
func BenchmarkExp_Fig9c(b *testing.B)      { benchExp(b, "fig9c") }
func BenchmarkExp_Fig9d(b *testing.B)      { benchExp(b, "fig9d") }
func BenchmarkExp_Fig11(b *testing.B)      { benchExp(b, "fig11") }
func BenchmarkExp_Fig12(b *testing.B)      { benchExp(b, "fig12") }
func BenchmarkExp_Fig13(b *testing.B)      { benchExp(b, "fig13") }
func BenchmarkExp_Fig14(b *testing.B)      { benchExp(b, "fig14") }
func BenchmarkExp_AppxD1(b *testing.B)     { benchExp(b, "appxD1") }
func BenchmarkExp_AppxE(b *testing.B)      { benchExp(b, "appxE") }
func BenchmarkExp_AppxB2(b *testing.B)     { benchExp(b, "appxB2") }
func BenchmarkExp_Insights(b *testing.B)   { benchExp(b, "insights") }
func BenchmarkExp_Ablation(b *testing.B)   { benchExp(b, "ablation") }
func BenchmarkExp_Throughput(b *testing.B) { benchExp(b, "throughput") }

// ---- micro-benchmarks of the system's hot paths ----

var benchDep *revtr.Deployment

func benchDeployment(b *testing.B) *revtr.Deployment {
	b.Helper()
	if benchDep == nil {
		cfg := revtr.DefaultConfig(300)
		cfg.Seed = 77
		cfg.Topology.Seed = 77
		benchDep = revtr.Build(cfg)
	}
	return benchDep
}

// BenchmarkMeasureReverse20 is the headline throughput number: complete
// revtr 2.0 measurements per second (the paper's system sustains 173/s on
// the real Internet with real RTTs; the simulator has none, so this
// measures pure engine + fabric work).
func BenchmarkMeasureReverse20(b *testing.B) {
	d := benchDeployment(b)
	src := d.NewSource(d.PickSourceHost(0))
	eng := d.Engine(core.Revtr20Options())
	dests := d.OnePerPrefix()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst := dests[i%len(dests)]
		eng.MeasureReverse(context.Background(), src, dst.Addr)
	}
}

// BenchmarkMeasureReverseParallel shares one engine (and the
// deployment's probe pool) across GOMAXPROCS goroutines — the service
// and campaign usage the concurrent probe layer enables. The seed
// engine was single-writer and could not run this benchmark at all.
func BenchmarkMeasureReverseParallel(b *testing.B) {
	d := benchDeployment(b)
	src := d.NewSource(d.PickSourceHost(0))
	eng := d.Engine(core.Revtr20Options())
	dests := d.OnePerPrefix()
	var next atomic.Int64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			dst := dests[int(next.Add(1))%len(dests)]
			eng.MeasureReverse(context.Background(), src, dst.Addr)
		}
	})
}

func BenchmarkMeasureReverse10(b *testing.B) {
	d := benchDeployment(b)
	src := d.NewSource(d.PickSourceHost(1))
	eng := d.Engine(core.Revtr10Options())
	dests := d.OnePerPrefix()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst := dests[i%len(dests)]
		eng.MeasureReverse(context.Background(), src, dst.Addr)
	}
}

func BenchmarkTraceroute(b *testing.B) {
	d := benchDeployment(b)
	src := d.NewSource(d.PickSourceHost(0))
	dests := d.OnePerPrefix()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Prober.Traceroute(src.Agent, dests[i%len(dests)].Addr)
	}
}

func BenchmarkRRPing(b *testing.B) {
	d := benchDeployment(b)
	src := d.NewSource(d.PickSourceHost(0))
	dests := d.OnePerPrefix()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Prober.RRPing(src.Agent, dests[i%len(dests)].Addr)
	}
}

func BenchmarkBGPTreeTo(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Routing.Invalidate()
		d.Routing.TreeTo(topology.ASN(i % len(d.Topo.ASes)))
	}
}

func BenchmarkTopologyGenerate(b *testing.B) {
	cfg := topology.DefaultConfig(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		topology.Generate(cfg)
	}
}

func BenchmarkAtlasBuild(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.AtlasSvc.BuildFor(d.SiteAgents[i%len(d.SiteAgents)])
	}
}

// BenchmarkCampaignParallel measures bulk topology-mapping throughput
// (§5.1's "15M reverse traceroutes per day"): complete reverse
// traceroutes per wall-clock second with per-source parallel workers.
func BenchmarkCampaignParallel(b *testing.B) {
	d := benchDeployment(b)
	var sources []core.Source
	for i := 0; i < 4 && i < len(d.SiteAgents); i++ {
		sources = append(sources, d.SourceFromAgent(d.SiteAgents[i]))
	}
	var dsts []ipv4.Addr
	for i, h := range d.OnePerPrefix() {
		if i >= 50 {
			break
		}
		dsts = append(dsts, h.Addr)
	}
	r := &campaign.Runner{D: d, Sources: sources, Opts: core.Revtr20Options()}
	tasks := campaign.AllPairs(len(sources), dsts)
	b.ResetTimer()
	start := time.Now()
	total := 0
	for i := 0; i < b.N; i++ {
		sum := r.Run(context.Background(), tasks)
		total += sum.Attempted
	}
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(total)/el, "revtr/s")
	}
}
