module revtr

go 1.23
