# Build / test entry points. `make ci` is what every PR must pass: vet
# and the repo's own static-analysis suite (revtr-lint: determinism,
# context, metrics, lock, and concurrency contracts), plus the full
# suite under the race detector (the service and campaign layers are
# concurrent; -race is load-bearing, not optional), plus the chaos
# suite under deterministic fault injection and a smoke pass over the
# fuzz targets.

GO ?= go

.PHONY: build test short vet lint race ci bench chaos fuzz soak cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# lint runs the repo's go/analysis-style suite (cmd/revtr-lint). Per
# package: detpath (wall clock / global rand / unsorted map ranges),
# ctxflow (context threading), obsnames (metric naming), locksafe
# (mutex hygiene). Module-wide, over the flow layer's CFG + call graph:
# lockorder (lock-order cycles), suspendsafe (locks/tickets held across
# suspension points), spawnbound (goroutine lifetime bounds). Any
# finding is a CI failure; see DESIGN.md "Determinism contract and
# static enforcement" and "Concurrency contract" for the rules and
# //revtr: escape hatches. `revtr-lint -json` / `-run <analyzers>`
# machine-reads and filters the same sweep.
lint:
	$(GO) run ./cmd/revtr-lint ./...

# -shuffle=on randomizes test order: the suites must not depend on
# package-level execution order (chaos plans and fabrics are built per
# test, so shuffling is free coverage).
race:
	$(GO) test -race -shuffle=on ./...

ci: vet lint race bench chaos fuzz soak cover

# cover enforces a coverage floor on the segment store: it is shared
# mutable state spliced into other measurements' results, so its
# eviction, expiry, and chain-walk edge cases must all stay exercised.
cover:
	$(GO) test -coverprofile=/tmp/segments.cover ./internal/core/segments/
	@$(GO) tool cover -func=/tmp/segments.cover | awk '/^total:/ { \
		pct = $$3 + 0; printf "internal/core/segments coverage: %s (floor 90%%)\n", $$3; \
		if (pct < 90) { print "coverage below floor"; exit 1 } }'

# chaos runs the fault-injection suites under -race: engine and campaign
# measured over lossy links, rate-limited routers, flapping routes, and
# blacked-out vantage points. The tests bake in 3 fault seeds x 2 loss
# levels each; -count=1 defeats caching so every CI run re-rolls.
chaos:
	$(GO) test -race -run Chaos -count=1 ./internal/core/ ./internal/campaign/

# soak pushes a 1000-job duplicate-heavy batch workload from three
# users through a live HTTP server and checks the scheduler's books:
# every job lands in exactly one terminal state, shed + coalesced +
# done + failed balances the submission total, the metrics agree with
# the per-job ledger, and nobody overdraws their daily quota.
# TestSoakStream reruns the workload with the full streaming surface
# attached — per-batch followers, firehose subscribers, one permanently
# stalled subscriber — and checks event/ledger conservation.
soak:
	$(GO) test -race -run 'TestSoak' -count=1 ./internal/service/

# fuzz gives each fuzz target a short budget: a smoke pass over the
# parser/codec fuzzers, not a soak (lengthen locally with FUZZTIME).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzParsePlan -fuzztime $(FUZZTIME) ./internal/netsim/faults/
	$(GO) test -fuzz FuzzSpecCodec -fuzztime $(FUZZTIME) ./internal/measure/
	$(GO) test -fuzz FuzzSegmentStore -fuzztime $(FUZZTIME) ./internal/core/segments/

# bench in CI runs every benchmark once (-benchtime 1x): a smoke test
# that the benchmarks still compile and run, not a performance gate. It
# also regenerates BENCH_engine.json (the checked-in engine benchmark
# corpus — measurements/s at 1..10k in-flight, suspended-machine
# footprint) so the numbers track the code; commit the refreshed file
# when it moves materially.
bench:
	BENCH_ENGINE_JSON=$(CURDIR)/BENCH_engine.json $(GO) test -run TestWriteEngineBenchJSON -count=1 ./internal/core/
	BENCH_SEGMENTS_JSON=$(CURDIR)/BENCH_segments.json $(GO) test -run TestWriteSegmentsBenchJSON -count=1 ./internal/core/
	$(GO) test -bench . -benchtime 1x -benchmem ./...
