# Build / test entry points. `make ci` is what every PR must pass: vet
# plus the full suite under the race detector (the service and campaign
# layers are concurrent; -race is load-bearing, not optional).

GO ?= go

.PHONY: build test short vet race ci bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

ci: vet race bench

# bench in CI runs every benchmark once (-benchtime 1x): a smoke test
# that the benchmarks still compile and run, not a performance gate.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem ./...
