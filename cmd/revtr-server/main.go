// Command revtr-server runs the open Reverse Traceroute service
// (Appendix A) over a freshly generated simulated Internet: it builds the
// deployment (topology, vantage points, ingress survey), then serves the
// REST API.
//
//	revtr-server -listen :8080 -ases 1000 -admin-key secret
//
// Interact with it using revtr-client or plain curl:
//
//	curl -XPOST -H 'X-Admin-Key: secret' localhost:8080/api/v1/users \
//	     -d '{"name":"alice"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"revtr"
	"revtr/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		ases     = flag.Int("ases", 1000, "ASes in the simulated Internet")
		seed     = flag.Int64("seed", 1, "simulation seed")
		adminKey = flag.String("admin-key", "admin", "admin API key for user management")
		sites    = flag.Int("sites", 30, "vantage point sites")
	)
	flag.Parse()

	log.Printf("building simulated Internet (%d ASes, %d sites)...", *ases, *sites)
	cfg := revtr.DefaultConfig(*ases)
	cfg.Seed = *seed
	cfg.Topology.Seed = *seed
	cfg.Sites = *sites
	d := revtr.Build(cfg)
	log.Printf("topology: %s", d.Topo.Stats())
	log.Printf("background probes consumed: %d", d.BackgroundProbes.Total())

	reg := service.NewRegistry(service.NewDeploymentBackend(d), *adminKey)
	api := service.NewAPI(reg)

	// Print a few example destination addresses so users can try the API
	// without reading the topology dump.
	hosts := d.OnePerPrefix()
	n := 5
	if len(hosts) < n {
		n = len(hosts)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("example destination %d: %s (AS%d)\n", i, hosts[i].Addr, hosts[i].AS)
	}
	fmt.Printf("example source host:   %s\n", d.PickSourceHost(0).Addr)

	log.Printf("serving on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, api))
}
