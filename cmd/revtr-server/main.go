// Command revtr-server runs the open Reverse Traceroute service
// (Appendix A) over a freshly generated simulated Internet: it builds the
// deployment (topology, vantage points, ingress survey), then serves the
// REST API from a hardened http.Server (connection timeouts, graceful
// shutdown on SIGINT/SIGTERM) with observability built in:
//
//	GET /metrics   engine + service counters, gauges, latency histograms
//	GET /healthz   plain-text liveness probe
//
// The batch scheduler (POST /api/v1/batch) is always on; -batch-workers,
// -batch-queue-cap, -batch-quantum, and -max-batch-pairs (per-request
// submission size cap) tune it. With -store-dir the
// measurement archive is durable: a restarted server replays its WAL and
// snapshot and serves the identical pre-crash measurement set under the
// same IDs.
//
//	revtr-server -listen :8080 -ases 1000 -admin-key secret -store-dir /var/lib/revtr
//
// Interact with it using revtr-client or plain curl:
//
//	curl -XPOST -H 'X-Admin-Key: secret' localhost:8080/api/v1/users \
//	     -d '{"name":"alice"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/core/segments"
	"revtr/internal/netsim/faults"
	"revtr/internal/probe"
	"revtr/internal/sched"
	"revtr/internal/service"
	"revtr/internal/store"
	"revtr/internal/stream"
)

// buildFaultPlan assembles the fault plan from the -faults spec string
// overlaid with the individual -fault-* flags. Returns nil when nothing
// is enabled.
func buildFaultPlan(spec string, loss, icmpFrac, icmpPass, flap float64, fseed uint64) (*faults.Plan, error) {
	plan, err := faults.Parse(spec)
	if err != nil {
		return nil, err
	}
	if loss > 0 {
		plan.LinkLoss = loss
	}
	if icmpFrac > 0 {
		plan.ICMPFrac = icmpFrac
	}
	if icmpPass > 0 {
		plan.ICMPPass = icmpPass
	}
	if flap > 0 {
		plan.FlapFrac = flap
	}
	if fseed != 0 {
		plan.Seed = fseed
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

func main() {
	var (
		listen        = flag.String("listen", ":8080", "listen address")
		ases          = flag.Int("ases", 1000, "ASes in the simulated Internet")
		seed          = flag.Int64("seed", 1, "simulation seed")
		adminKey      = flag.String("admin-key", "admin", "admin API key for user management")
		sites         = flag.Int("sites", 30, "vantage point sites")
		probeWorkers  = flag.Int("probe-workers", 0, "concurrent probes in the shared probe pool (0 = GOMAXPROCS)")
		measureTO     = flag.Duration("measure-timeout", 0, "per-measurement wall-clock cap when a request sets no timeoutMs (0 = none)")
		faultSpec     = flag.String("faults", "", "fault plan spec, e.g. loss=0.01,icmp-frac=0.3,icmp-pass=0.5 (see internal/netsim/faults)")
		faultLoss     = flag.Float64("fault-loss", 0, "per-link packet loss probability (overrides -faults)")
		faultICMPFr   = flag.Float64("fault-icmp-frac", 0, "fraction of routers that ICMP-rate-limit (overrides -faults)")
		faultICMPOK   = flag.Float64("fault-icmp-pass", 0, "steady-state pass probability at rate-limiting routers (overrides -faults)")
		faultFlap     = flag.Float64("fault-flap", 0, "fraction of links mid route-flap per period (overrides -faults)")
		faultVPOut    = flag.Int("fault-vp-outages", 0, "blackout this many spoof-capable vantage point sites from t=0")
		faultSeed     = flag.Uint64("fault-seed", 0, "fault plan seed (overrides -faults; 0 = keep)")
		segmentTTL    = flag.Duration("segment-ttl", 0, "memoize reverse-path segments across measurements for this long in virtual time (0 = off)")
		segmentMax    = flag.Int("segment-max", 0, "max memoized segments when -segment-ttl is set (0 = default 262144)")
		retries       = flag.Int("probe-retries", 0, "re-issue unanswered probes up to this many times (virtual-time backoff)")
		retryBackoff  = flag.Duration("probe-retry-backoff", 0, "delay before the first probe retry, doubling per retry (0 = default 50ms)")
		storeDir      = flag.String("store-dir", "", "durable measurement store directory (empty = memory-only; measurements vanish on restart)")
		storeSync     = flag.Bool("store-sync", false, "fsync the measurement WAL after every append")
		storeWALMax   = flag.Int64("store-max-wal-bytes", 0, "compact (snapshot + truncate) when the WAL exceeds this (0 = default 4 MiB)")
		storeRecMax   = flag.Int("store-max-records", 0, "cap the live measurement set, dropping oldest (0 = unbounded)")
		batchWorkers  = flag.Int("batch-workers", 4, "concurrent batch measurement workers (sync fallback; async dispatch bounds by -batch-inflight instead)")
		batchInFlight = flag.Int("batch-inflight", 4096, "max concurrently in-flight async batch measurements")
		batchQueue    = flag.Int("batch-queue-cap", 1024, "batch dispatch queue cap; submissions past it are load-shed")
		batchQuantum  = flag.Int("batch-quantum", 4, "deficit round-robin quantum: jobs served per user per ring visit")
		batchPairs    = flag.Int("max-batch-pairs", 0, "max pairs per POST /api/v1/batch request, 400 past it (0 = default 10000)")
		streamBuffer  = flag.Int("stream-buffer", 0, "per-subscriber event ring on /events and /firehose; a slow subscriber past it drops oldest and gaps (0 = default 256)")
		firehoseRepl  = flag.Int("firehose-replay", 0, "max archived measurements GET /api/v1/firehose?replay= serves before going live (0 = default 64)")
		heartbeat     = flag.Duration("stream-heartbeat", 0, "keep-alive interval on idle event streams (0 = default 15s)")
		readTimeout   = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		writeTimeout  = flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (bulk measurements take a while)")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	)
	flag.Parse()

	log.Printf("building simulated Internet (%d ASes, %d sites)...", *ases, *sites)
	cfg := revtr.DefaultConfig(*ases)
	cfg.Seed = *seed
	cfg.Topology.Seed = *seed
	cfg.Sites = *sites
	cfg.ProbeWorkers = *probeWorkers
	d := revtr.Build(cfg)
	log.Printf("topology: %s", d.Topo.Stats())
	log.Printf("background probes consumed: %d", d.BackgroundProbes.Total())

	// Fault injection attaches after Build, so the atlas and ingress
	// survey are measured on a healthy network and only live measurements
	// contend with the injected faults.
	plan, err := buildFaultPlan(*faultSpec, *faultLoss, *faultICMPFr, *faultICMPOK, *faultFlap, *faultSeed)
	if err != nil {
		log.Fatalf("fault plan: %v", err)
	}
	if *faultVPOut > 0 {
		n := 0
		for i := len(d.SiteAgents) - 1; i >= 0 && n < *faultVPOut; i-- {
			if d.SiteAgents[i].CanSpoof {
				plan.AddBlackout(d.SiteAgents[i].Addr, 0, 0)
				n++
			}
		}
		log.Printf("fault plan: %d vantage point sites blacked out", n)
	}
	if plan.Enabled() {
		d.Fabric.SetFaults(plan)
		log.Printf("fault plan active: %s", plan)
	}
	if *retries > 0 {
		d.Pool.SetRetry(probe.RetryPolicy{Max: *retries, BackoffUS: retryBackoff.Microseconds()})
	}

	engineOpts := core.Revtr20Options()
	var segStore *segments.Store
	if *segmentTTL > 0 {
		segStore = segments.New(segments.Options{
			TTLUS:      segmentTTL.Microseconds(),
			MaxEntries: *segmentMax,
		})
		engineOpts.SegmentStore = segStore
		eff := *segmentMax
		if eff <= 0 {
			eff = segments.DefaultMaxEntries
		}
		log.Printf("segment memoization: ttl %s, max %d segments", *segmentTTL, eff)
	}
	backend := service.NewDeploymentBackendOptions(d, engineOpts)
	var reg *service.Registry
	if *storeDir != "" {
		archive, err := store.Open(*storeDir, store.Options{
			Sync:        *storeSync,
			MaxWALBytes: *storeWALMax,
			MaxRecords:  *storeRecMax,
		})
		if err != nil {
			log.Fatalf("measurement store: %v", err)
		}
		defer archive.Close()
		if n := archive.Len(); n > 0 {
			log.Printf("measurement store: recovered %d measurements from %s (next id %d)",
				n, *storeDir, archive.NextID())
		}
		reg = service.NewRegistryWithArchive(backend, *adminKey, archive)
	} else {
		reg = service.NewRegistry(backend, *adminKey)
	}
	// Engine metrics land in the same registry the service renders on
	// GET /metrics, so per-stage engine accounting is live from request 1.
	backend.Engine.SetMetrics(core.NewMetrics(reg.Obs()))
	segStore.SetObs(reg.Obs())
	// Pool metrics (in-flight probes, batch sizes/latencies) land next to
	// the engine's on GET /metrics, as do fault-injection tallies.
	d.Pool.SetObs(reg.Obs())
	plan.SetObs(reg.Obs())
	api := service.NewAPI(reg)
	api.MeasureTimeout = *measureTO
	api.MaxBatchPairs = *batchPairs
	api.HeartbeatInterval = *heartbeat
	api.FirehoseReplay = *firehoseRepl

	// Streaming before EnableBatch: the first batch job's first event
	// already has a broker to land on.
	broker := reg.EnableStream(stream.Options{SubBuffer: *streamBuffer})
	effRing := *streamBuffer
	if effRing <= 0 {
		effRing = 256
	}
	log.Printf("streaming: /api/v1/batch/{id}/events + /api/v1/firehose (subscriber ring %d)", effRing)

	// The batch scheduler's workers live until the shutdown context
	// fires; Drain below waits for the last in-flight measurements.
	batchCtx, stopBatch := context.WithCancel(context.Background())
	defer stopBatch()
	sc := reg.EnableBatch(batchCtx, sched.Options{
		Workers:     *batchWorkers,
		QueueCap:    *batchQueue,
		Quantum:     *batchQuantum,
		MaxInFlight: *batchInFlight,
	})
	log.Printf("batch scheduler: %d workers (async: up to %d in flight), queue cap %d, quantum %d",
		*batchWorkers, *batchInFlight, *batchQueue, *batchQuantum)

	// Print a few example destination addresses so users can try the API
	// without reading the topology dump.
	hosts := d.OnePerPrefix()
	n := 5
	if len(hosts) < n {
		n = len(hosts)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("example destination %d: %s (AS%d)\n", i, hosts[i].Addr, hosts[i].AS)
	}
	fmt.Printf("example source host:   %s\n", d.PickSourceHost(0).Addr)

	srv := &http.Server{
		Addr:              *listen,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (metrics on /metrics, liveness on /healthz)", *listen)

	select {
	case err := <-errc:
		log.Fatalf("server: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("signal received, draining connections (max %s)...", *drainTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// End every event stream before srv.Shutdown: streaming handlers
		// hold their connections open until their subscription terminates,
		// and Shutdown waits for active connections.
		broker.Shutdown()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: %v", err)
		}
		stopBatch()
		if err := sc.Drain(shCtx); err != nil {
			log.Printf("batch drain: %v", err)
		}
		st := reg.Stats()
		log.Printf("drained: %d users, %d sources, %d measurements archived",
			st.Users, st.Sources, st.Measurements)
	}
}
