// Command revtr-campaign runs a bulk topology-mapping campaign (the §5.1
// use case: one reverse traceroute from a responsive host in every routed
// prefix back to each source), in parallel, and prints the §5.1-style
// summary: completion, symmetry-assumption share, probe budget, and the
// AS coverage of the measured reverse paths.
//
//	revtr-campaign -ases 1000 -sources 8 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"revtr"
	"revtr/internal/campaign"
	"revtr/internal/core"
	"revtr/internal/core/segments"
	"revtr/internal/ip2as"
	"revtr/internal/netsim/faults"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
	"revtr/internal/obs"
	"revtr/internal/probe"
)

func main() {
	var (
		ases    = flag.Int("ases", 1000, "ASes in the simulated Internet")
		seed    = flag.Int64("seed", 1, "simulation seed")
		sources = flag.Int("sources", 8, "number of sources (vantage point sites)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		pworker = flag.Int("probe-workers", 0, "concurrent probes in the shared probe pool (0 = GOMAXPROCS)")
		maxDest = flag.Int("dests", 0, "cap destinations (0 = one per routed prefix)")
		every   = flag.Int("progress-every", 500, "log live progress every N completed tasks (0 = off)")
		dumpObs = flag.Bool("metrics", false, "print the observability registry (engine stages, cache, latency histograms) after the run")

		faultSpec    = flag.String("faults", "", "fault plan spec, e.g. loss=0.01,icmp-frac=0.3,icmp-pass=0.5 (see internal/netsim/faults)")
		faultLoss    = flag.Float64("fault-loss", 0, "per-link packet loss probability (overrides -faults)")
		faultICMPFr  = flag.Float64("fault-icmp-frac", 0, "fraction of routers that ICMP-rate-limit (overrides -faults)")
		faultICMPOK  = flag.Float64("fault-icmp-pass", 0, "steady-state pass probability at rate-limiting routers (overrides -faults)")
		faultFlap    = flag.Float64("fault-flap", 0, "fraction of links mid route-flap per period (overrides -faults)")
		faultVPOut   = flag.Int("fault-vp-outages", 0, "blackout this many spoof-capable non-source vantage point sites from t=0")
		faultSeed    = flag.Uint64("fault-seed", 0, "fault plan seed (overrides -faults; 0 = keep)")
		retries      = flag.Int("probe-retries", 0, "re-issue unanswered probes up to this many times (virtual-time backoff)")
		retryBackoff = flag.Duration("probe-retry-backoff", 0, "delay before the first probe retry, doubling per retry (0 = default 50ms)")
		segmentTTL   = flag.Duration("segment-ttl", 0, "memoize reverse-path segments across measurements for this long in virtual time (0 = off)")
		segmentMax   = flag.Int("segment-max", 0, "max memoized segments when -segment-ttl is set (0 = default 262144)")
	)
	flag.Parse()

	log.Printf("building simulated Internet (%d ASes)...", *ases)
	cfg := revtr.DefaultConfig(*ases)
	cfg.Seed = *seed
	cfg.Topology.Seed = *seed
	d := revtr.Build(cfg)
	log.Printf("topology: %s", d.Topo.Stats())

	// Fault injection attaches after Build: atlas and ingress survey are
	// measured healthy, the campaign's measurements contend with faults.
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatalf("fault plan: %v", err)
	}
	if *faultLoss > 0 {
		plan.LinkLoss = *faultLoss
	}
	if *faultICMPFr > 0 {
		plan.ICMPFrac = *faultICMPFr
	}
	if *faultICMPOK > 0 {
		plan.ICMPPass = *faultICMPOK
	}
	if *faultFlap > 0 {
		plan.FlapFrac = *faultFlap
	}
	if *faultSeed != 0 {
		plan.Seed = *faultSeed
	}
	if err := plan.Validate(); err != nil {
		log.Fatalf("fault plan: %v", err)
	}
	if *faultVPOut > 0 {
		// Black out spoof-capable sites that are not campaign sources, so
		// the run exercises VP failover rather than just killing sources.
		n := 0
		for i := len(d.SiteAgents) - 1; i >= *sources && n < *faultVPOut; i-- {
			if d.SiteAgents[i].CanSpoof {
				plan.AddBlackout(d.SiteAgents[i].Addr, 0, 0)
				n++
			}
		}
		log.Printf("fault plan: %d vantage point sites blacked out", n)
	}
	if plan.Enabled() {
		d.Fabric.SetFaults(plan)
		log.Printf("fault plan active: %s", plan)
	}
	if *retries > 0 {
		d.Pool.SetRetry(probe.RetryPolicy{Max: *retries, BackoffUS: retryBackoff.Microseconds()})
	}

	var srcs []core.Source
	for i := 0; i < *sources && i < len(d.SiteAgents); i++ {
		srcs = append(srcs, d.SourceFromAgent(d.SiteAgents[i]))
	}
	var dsts []ipv4.Addr
	for _, h := range d.OnePerPrefix() {
		dsts = append(dsts, h.Addr)
		if *maxDest > 0 && len(dsts) >= *maxDest {
			break
		}
	}
	tasks := campaign.AllPairs(len(srcs), dsts)
	log.Printf("campaign: %d sources x %d destinations = %d reverse traceroutes, %d workers",
		len(srcs), len(dsts), len(tasks), *workers)

	var (
		mu        sync.Mutex
		symShare  int
		asCovered = map[topology.ASN]bool{}
	)
	obsReg := obs.New()
	plan.SetObs(obsReg)
	campaignOpts := core.Revtr20Options()
	if *segmentTTL > 0 {
		st := segments.New(segments.Options{
			TTLUS:      segmentTTL.Microseconds(),
			MaxEntries: *segmentMax,
		})
		st.SetObs(obsReg)
		campaignOpts.SegmentStore = st
		eff := *segmentMax
		if eff <= 0 {
			eff = segments.DefaultMaxEntries
		}
		log.Printf("segment memoization: ttl %s, max %d segments", *segmentTTL, eff)
	}
	start := time.Now() //revtr:wallclock operator-facing throughput log, not simulation time
	r := &campaign.Runner{
		D: d, Sources: srcs, Opts: campaignOpts, Workers: *workers,
		ProbeWorkers:  *pworker,
		Obs:           obsReg,
		ProgressEvery: *every,
		OnResult: func(o campaign.Outcome) {
			if o.Result.Status != core.StatusComplete {
				return
			}
			mu.Lock()
			if o.Result.SymAssumed > 0 {
				symShare++
			}
			for _, asn := range ip2as.ASPath(d.Mapper, o.Result.Addrs()) {
				asCovered[asn] = true
			}
			mu.Unlock()
		},
	}
	if *every > 0 {
		// Live §5.2.4-style throughput accounting while the campaign runs.
		r.OnProgress = func(p campaign.Progress) {
			elapsed := time.Since(start).Seconds() //revtr:wallclock operator-facing throughput log, not simulation time
			log.Printf("progress: %d/%d (%.1f%%) complete=%d aborted=%d failed=%d | %.0f revtr/s | %d probes",
				p.Done, p.Total, 100*float64(p.Done)/float64(max(1, p.Total)),
				p.Complete, p.Aborted, p.Failed,
				float64(p.Done)/elapsed, p.Probes)
		}
	}
	sum := r.Run(context.Background(), tasks)
	wall := time.Since(start) //revtr:wallclock operator-facing runtime report, not simulation time

	fmt.Printf("\n== campaign summary (§5.1 style) ==\n")
	fmt.Printf("attempted:             %d\n", sum.Attempted)
	fmt.Printf("complete:              %d (%.1f%%)\n", sum.Complete, 100*sum.Coverage())
	fmt.Printf("aborted (interdomain): %d\n", sum.Aborted)
	fmt.Printf("failed:                %d\n", sum.Failed)
	fmt.Printf("with intradomain symmetry assumption: %d (%.1f%% of complete; paper: 24%%)\n",
		symShare, 100*float64(symShare)/float64(max(1, sum.Complete)))
	fmt.Printf("probe packets:         %d (%.1f per attempt)\n",
		sum.Probes.Total(), float64(sum.Probes.Total())/float64(max(1, sum.Attempted)))
	fmt.Printf("ASes on measured reverse paths: %d of %d (%.1f%%; paper: 39.5K of 72K)\n",
		len(asCovered), len(d.Topo.ASes), 100*float64(len(asCovered))/float64(len(d.Topo.ASes)))
	if sum.Invalid > 0 {
		fmt.Printf("invalid tasks:         %d (rejected up front, counted as failed)\n", sum.Invalid)
	}
	if plan.Enabled() {
		fmt.Printf("faults injected:       %d (link-loss=%d icmp-limit=%d blackout=%d flap=%d)\n",
			plan.Total(), plan.Count(faults.KindLinkLoss), plan.Count(faults.KindRateLimit),
			plan.Count(faults.KindBlackout), plan.Count(faults.KindFlap))
	}
	fmt.Printf("wall time:             %.1fs (%.0f revtr/s on this machine)\n",
		wall.Seconds(), float64(sum.Attempted)/wall.Seconds())
	fmt.Printf("virtual measurement time: %.0fs total\n", float64(sum.VirtualUS)/1e6)

	if *dumpObs {
		fmt.Printf("\n== observability registry ==\n")
		_ = obsReg.WriteText(os.Stdout)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
