// Command revtr-client talks to a running revtr-server.
//
//	revtr-client -server http://localhost:8080 adduser -admin-key admin -name alice
//	revtr-client -server ... -key KEY addsource -addr 16.0.128.1
//	revtr-client -server ... -key KEY measure -src 16.0.128.1 -dst 16.12.128.1
//	revtr-client -server ... get -id 0
//	revtr-client -server ... sources
//	revtr-client -server ... stats
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "server base URL")
	key := flag.String("key", "", "API key (X-API-Key)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: revtr-client [flags] adduser|addsource|measure|get|sources|stats [subflags]")
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	c := &client{base: strings.TrimRight(*server, "/"), key: *key}

	var err error
	switch cmd {
	case "adduser":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		adminKey := fs.String("admin-key", "admin", "admin key")
		name := fs.String("name", "user", "user name")
		parallel := fs.Int("parallel", 4, "max parallel measurements")
		perDay := fs.Int("per-day", 1000, "max measurements per day")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/users",
			map[string]string{"X-Admin-Key": *adminKey},
			map[string]any{"name": *name, "maxParallel": *parallel, "maxPerDay": *perDay})
	case "addsource":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		addr := fs.String("addr", "", "source address to register")
		vp := fs.Bool("vp", false, "also serve as a record route vantage point")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/sources", nil,
			map[string]any{"addr": *addr, "serveAsVP": *vp})
	case "measure":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		src := fs.String("src", "", "registered source address")
		dst := fs.String("dst", "", "comma-separated destination addresses")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/revtr", nil,
			map[string]any{"src": *src, "dsts": strings.Split(*dst, ",")})
	case "get":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		id := fs.Int("id", 0, "measurement id")
		_ = fs.Parse(args)
		err = c.do("GET", fmt.Sprintf("/api/v1/revtr/%d", *id), nil, nil)
	case "sources":
		err = c.do("GET", "/api/v1/sources", nil, nil)
	case "stats":
		err = c.do("GET", "/api/v1/stats", nil, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type client struct {
	base, key string
}

// do sends one request and pretty-prints the JSON response.
func (c *client) do(method, path string, headers map[string]string, body any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if c.key != "" {
		req.Header.Set("X-API-Key", c.key)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else {
		fmt.Println(string(raw))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
