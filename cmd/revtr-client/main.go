// Command revtr-client talks to a running revtr-server.
//
//	revtr-client -server http://localhost:8080 adduser -admin-key admin -name alice
//	revtr-client -server ... -key KEY addsource -addr 16.0.128.1
//	revtr-client -server ... -key KEY measure -src 16.0.128.1 -dst 16.12.128.1
//	revtr-client -server ... -key KEY batch -pairs pairs.txt
//	revtr-client -server ... -key KEY tail -replay 16
//	revtr-client -server ... get -id 0
//	revtr-client -server ... sources
//	revtr-client -server ... stats
//	revtr-client -server ... revoke -admin-key admin -target KEY
//
// The batch pairs file holds one "src dst" pair per line (whitespace or
// comma separated; blank lines and #-comments ignored). batch submits
// the whole file as one asynchronous job, follows its NDJSON event
// stream (hop-by-hop reveals as the engine stitches each reverse path;
// -follow=false or a server without streaming falls back to jittered
// polling), prints a per-job table, and exits non-zero if any job
// failed or was shed. tail follows the server-wide firehose of
// completed measurements — every measurement with an admin key, your
// own otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "server base URL")
	key := flag.String("key", "", "API key (X-API-Key)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: revtr-client [flags] adduser|addsource|measure|batch|tail|get|sources|stats|revoke [subflags]")
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	c := &client{base: strings.TrimRight(*server, "/"), key: *key}

	var err error
	switch cmd {
	case "adduser":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		adminKey := fs.String("admin-key", "admin", "admin key")
		name := fs.String("name", "user", "user name")
		parallel := fs.Int("parallel", 4, "max parallel measurements")
		perDay := fs.Int("per-day", 1000, "max measurements per day")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/users",
			map[string]string{"X-Admin-Key": *adminKey},
			map[string]any{"name": *name, "maxParallel": *parallel, "maxPerDay": *perDay})
	case "addsource":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		addr := fs.String("addr", "", "source address to register")
		vp := fs.Bool("vp", false, "also serve as a record route vantage point")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/sources", nil,
			map[string]any{"addr": *addr, "serveAsVP": *vp})
	case "measure":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		src := fs.String("src", "", "registered source address")
		dst := fs.String("dst", "", "comma-separated destination addresses")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/revtr", nil,
			map[string]any{"src": *src, "dsts": strings.Split(*dst, ",")})
	case "batch":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		pairsPath := fs.String("pairs", "", "file of 'src dst' pairs, one per line ('-' = stdin)")
		follow := fs.Bool("follow", true, "stream live progress events instead of polling (falls back to polling if the server has no streaming)")
		poll := fs.Duration("poll", 250*time.Millisecond, "initial poll interval on the polling fallback (doubles up to 16x, jittered)")
		timeout := fs.Duration("timeout", 10*time.Minute, "give up waiting after this long")
		_ = fs.Parse(args)
		err = c.batch(*pairsPath, *follow, *poll, *timeout)
	case "tail":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		adminKey := fs.String("admin-key", "", "admin key (sees every user's measurements)")
		user := fs.String("user", "", "filter by user name (admin only; user keys are auto-scoped)")
		src := fs.String("src", "", "filter by source address")
		dst := fs.String("dst", "", "filter by destination address")
		replay := fs.Int("replay", 0, "serve this many recent archived measurements before going live")
		_ = fs.Parse(args)
		err = c.tail(*adminKey, *user, *src, *dst, *replay)
	case "revoke":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		adminKey := fs.String("admin-key", "admin", "admin key")
		target := fs.String("target", "", "API key to revoke")
		_ = fs.Parse(args)
		err = c.do("DELETE", "/api/v1/users/"+*target,
			map[string]string{"X-Admin-Key": *adminKey}, nil)
	case "get":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		id := fs.Int("id", 0, "measurement id")
		_ = fs.Parse(args)
		err = c.do("GET", fmt.Sprintf("/api/v1/revtr/%d", *id), nil, nil)
	case "sources":
		err = c.do("GET", "/api/v1/sources", nil, nil)
	case "stats":
		err = c.do("GET", "/api/v1/stats", nil, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type client struct {
	base, key string
}

// batchStatus mirrors the server's batch snapshot JSON.
type batchStatus struct {
	ID     string         `json:"batchId"`
	Jobs   []batchJob     `json:"jobs"`
	Counts map[string]int `json:"counts"`
	Done   bool           `json:"done"`
}

type batchJob struct {
	Index     int    `json:"index"`
	Src       string `json:"src"`
	Dst       string `json:"dst"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced"`
	Error     string `json:"error"`
}

// readPairs parses a pairs file: one "src dst" per line, whitespace or
// comma separated, blank lines and #-comments ignored.
func readPairs(path string) ([]map[string]string, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var pairs []map[string]string
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'src dst', got %q", i+1, line)
		}
		pairs = append(pairs, map[string]string{"src": fields[0], "dst": fields[1]})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("no pairs in %s", path)
	}
	return pairs, nil
}

// streamEvent mirrors the server's NDJSON event wire format.
type streamEvent struct {
	ID      uint64          `json:"id"`
	Kind    string          `json:"kind"`
	Seq     uint64          `json:"seq"`
	VirtUS  int64           `json:"virtualUs"`
	Batch   string          `json:"batch"`
	Job     int             `json:"job"`
	User    string          `json:"user"`
	Src     string          `json:"src"`
	Dst     string          `json:"dst"`
	Hop     string          `json:"hop"`
	Tech    string          `json:"technique"`
	Spliced bool            `json:"spliced"`
	Count   int             `json:"count"`
	State   string          `json:"state"`
	Status  string          `json:"status"`
	Reason  string          `json:"reason"`
	Gap     uint64          `json:"gap"`
	Err     string          `json:"error"`
	Result  json.RawMessage `json:"result"`
}

// render prints one progress event as a human line on stderr.
func (ev *streamEvent) render(w io.Writer) {
	switch ev.Kind {
	case "heartbeat":
	case "hop":
		mark := ""
		if ev.Spliced {
			mark = " [spliced]"
		}
		fmt.Fprintf(w, "  job %-4d hop %-15s %s%s\n", ev.Job, ev.Hop, ev.Tech, mark)
	case "spliced":
		fmt.Fprintf(w, "  job %-4d splice: adopting %d memoized hops\n", ev.Job, ev.Count)
	case "fallback":
		fmt.Fprintf(w, "  job %-4d falling back to %s\n", ev.Job, ev.Tech)
	case "vp-failover":
		fmt.Fprintf(w, "  job %-4d vantage point %s dead, failing over\n", ev.Job, ev.Hop)
	case "state":
		line := fmt.Sprintf("  job %-4d %s > %s  %s", ev.Job, ev.Src, ev.Dst, ev.State)
		if ev.Err != "" {
			line += "  " + ev.Err
		}
		fmt.Fprintln(w, line)
	case "gap":
		fmt.Fprintf(w, "  (stream gap: %d events dropped)\n", ev.Gap)
	case "started", "done", "aborted", "failed", "cancelled":
		fmt.Fprintf(w, "  job %-4d %s > %s  measurement %s\n", ev.Job, ev.Src, ev.Dst, ev.Kind)
	case "measurement":
		fmt.Fprintf(w, "measurement %s > %s  %s  (user %s)\n", ev.Src, ev.Dst, ev.Status, ev.User)
	case "end":
		fmt.Fprintf(w, "stream ended: %s\n", ev.Reason)
	}
}

// stream GETs an NDJSON endpoint and renders each event until the
// stream ends ("end" event or EOF). extraHeaders augment the API key.
func (c *client) stream(path string, extraHeaders map[string]string) error {
	req, err := http.NewRequest("GET", c.base+path, nil)
	if err != nil {
		return err
	}
	if c.key != "" {
		req.Header.Set("X-API-Key", c.key)
	}
	for k, v := range extraHeaders {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev streamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("bad event %q: %v", line, err)
		}
		ev.render(os.Stderr)
		if ev.Kind == "end" {
			return nil
		}
	}
	return sc.Err()
}

// tail follows the server-wide firehose of completed measurements.
func (c *client) tail(adminKey, user, src, dst string, replay int) error {
	q := make([]string, 0, 4)
	for _, kv := range [][2]string{{"user", user}, {"src", src}, {"dst", dst}} {
		if kv[1] != "" {
			q = append(q, kv[0]+"="+kv[1])
		}
	}
	if replay > 0 {
		q = append(q, fmt.Sprintf("replay=%d", replay))
	}
	path := "/api/v1/firehose"
	if len(q) > 0 {
		path += "?" + strings.Join(q, "&")
	}
	var hdr map[string]string
	if adminKey != "" {
		hdr = map[string]string{"X-Admin-Key": adminKey}
	}
	return c.stream(path, hdr)
}

// jitter spreads a poll interval uniformly over [d/2, 3d/2) so many
// clients polling one server don't synchronize into a thundering herd.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// batch submits the pairs file as one asynchronous batch, follows its
// event stream (or polls with jittered backoff as fallback) until
// every job is terminal, prints a per-job table, and returns an error
// (non-zero exit) if any job failed or was shed.
func (c *client) batch(pairsPath string, follow bool, poll, timeout time.Duration) error {
	if pairsPath == "" {
		return fmt.Errorf("batch: -pairs is required")
	}
	pairs, err := readPairs(pairsPath)
	if err != nil {
		return err
	}
	var st batchStatus
	if err := c.json("POST", "/api/v1/batch", map[string]any{"pairs": pairs}, &st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch %s: %d jobs submitted %v\n", st.ID, len(st.Jobs), st.Counts)

	if follow && !st.Done {
		if err := c.stream("/api/v1/batch/"+st.ID+"/events", nil); err != nil {
			fmt.Fprintf(os.Stderr, "streaming unavailable (%v), falling back to polling\n", err)
		}
		// Fetch the final snapshot either way: the stream renders
		// progress; the table below needs the authoritative states.
		var next batchStatus
		if err := c.json("GET", "/api/v1/batch/"+st.ID, nil, &next); err != nil {
			return err
		}
		st = next
	}

	deadline := time.Now().Add(timeout) //revtr:wallclock client-side poll timeout, real time by definition
	wait := poll
	for !st.Done {
		if time.Now().After(deadline) { //revtr:wallclock client-side poll timeout, real time by definition
			return fmt.Errorf("batch %s still running after %s: %v", st.ID, timeout, st.Counts)
		}
		time.Sleep(jitter(wait))
		if wait < 16*poll {
			wait *= 2 // back off while the batch runs; the server does the waiting
		}
		// Decode into a fresh struct: Unmarshal merges into an existing
		// map, which would leave stale state counts from earlier polls.
		var next batchStatus
		if err := c.json("GET", "/api/v1/batch/"+st.ID, nil, &next); err != nil {
			return err
		}
		st = next
		fmt.Fprintf(os.Stderr, "batch %s: %v\n", st.ID, st.Counts)
	}

	bad := 0
	for _, j := range st.Jobs {
		line := fmt.Sprintf("%4d  %s > %s  %s", j.Index, j.Src, j.Dst, j.State)
		if j.Coalesced {
			line += " (coalesced: zero probes charged)"
		}
		if j.Error != "" {
			line += "  " + j.Error
		}
		fmt.Println(line)
		if j.State == "failed" || j.State == "shed" {
			bad++
		}
	}
	fmt.Fprintf(os.Stderr, "batch %s finished: %v\n", st.ID, st.Counts)
	if bad > 0 {
		return fmt.Errorf("%d of %d jobs did not complete", bad, len(st.Jobs))
	}
	return nil
}

// json sends one request and decodes the JSON response into out.
func (c *client) json(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if c.key != "" {
		req.Header.Set("X-API-Key", c.key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, out)
}

// do sends one request and pretty-prints the JSON response.
func (c *client) do(method, path string, headers map[string]string, body any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if c.key != "" {
		req.Header.Set("X-API-Key", c.key)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else {
		fmt.Println(string(raw))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
