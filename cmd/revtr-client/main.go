// Command revtr-client talks to a running revtr-server.
//
//	revtr-client -server http://localhost:8080 adduser -admin-key admin -name alice
//	revtr-client -server ... -key KEY addsource -addr 16.0.128.1
//	revtr-client -server ... -key KEY measure -src 16.0.128.1 -dst 16.12.128.1
//	revtr-client -server ... -key KEY batch -pairs pairs.txt
//	revtr-client -server ... get -id 0
//	revtr-client -server ... sources
//	revtr-client -server ... stats
//	revtr-client -server ... revoke -admin-key admin -target KEY
//
// The batch pairs file holds one "src dst" pair per line (whitespace or
// comma separated; blank lines and #-comments ignored). batch submits
// the whole file as one asynchronous job, polls until every job is
// terminal, prints a per-job table, and exits non-zero if any job
// failed or was shed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "server base URL")
	key := flag.String("key", "", "API key (X-API-Key)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: revtr-client [flags] adduser|addsource|measure|batch|get|sources|stats|revoke [subflags]")
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	c := &client{base: strings.TrimRight(*server, "/"), key: *key}

	var err error
	switch cmd {
	case "adduser":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		adminKey := fs.String("admin-key", "admin", "admin key")
		name := fs.String("name", "user", "user name")
		parallel := fs.Int("parallel", 4, "max parallel measurements")
		perDay := fs.Int("per-day", 1000, "max measurements per day")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/users",
			map[string]string{"X-Admin-Key": *adminKey},
			map[string]any{"name": *name, "maxParallel": *parallel, "maxPerDay": *perDay})
	case "addsource":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		addr := fs.String("addr", "", "source address to register")
		vp := fs.Bool("vp", false, "also serve as a record route vantage point")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/sources", nil,
			map[string]any{"addr": *addr, "serveAsVP": *vp})
	case "measure":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		src := fs.String("src", "", "registered source address")
		dst := fs.String("dst", "", "comma-separated destination addresses")
		_ = fs.Parse(args)
		err = c.do("POST", "/api/v1/revtr", nil,
			map[string]any{"src": *src, "dsts": strings.Split(*dst, ",")})
	case "batch":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		pairsPath := fs.String("pairs", "", "file of 'src dst' pairs, one per line ('-' = stdin)")
		poll := fs.Duration("poll", 250*time.Millisecond, "initial poll interval while the batch runs (doubles up to 16x)")
		timeout := fs.Duration("timeout", 10*time.Minute, "give up waiting after this long")
		_ = fs.Parse(args)
		err = c.batch(*pairsPath, *poll, *timeout)
	case "revoke":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		adminKey := fs.String("admin-key", "admin", "admin key")
		target := fs.String("target", "", "API key to revoke")
		_ = fs.Parse(args)
		err = c.do("DELETE", "/api/v1/users/"+*target,
			map[string]string{"X-Admin-Key": *adminKey}, nil)
	case "get":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		id := fs.Int("id", 0, "measurement id")
		_ = fs.Parse(args)
		err = c.do("GET", fmt.Sprintf("/api/v1/revtr/%d", *id), nil, nil)
	case "sources":
		err = c.do("GET", "/api/v1/sources", nil, nil)
	case "stats":
		err = c.do("GET", "/api/v1/stats", nil, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type client struct {
	base, key string
}

// batchStatus mirrors the server's batch snapshot JSON.
type batchStatus struct {
	ID     string         `json:"batchId"`
	Jobs   []batchJob     `json:"jobs"`
	Counts map[string]int `json:"counts"`
	Done   bool           `json:"done"`
}

type batchJob struct {
	Index     int    `json:"index"`
	Src       string `json:"src"`
	Dst       string `json:"dst"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced"`
	Error     string `json:"error"`
}

// readPairs parses a pairs file: one "src dst" per line, whitespace or
// comma separated, blank lines and #-comments ignored.
func readPairs(path string) ([]map[string]string, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var pairs []map[string]string
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'src dst', got %q", i+1, line)
		}
		pairs = append(pairs, map[string]string{"src": fields[0], "dst": fields[1]})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("no pairs in %s", path)
	}
	return pairs, nil
}

// batch submits the pairs file as one asynchronous batch, polls until
// every job is terminal, prints a per-job table, and returns an error
// (non-zero exit) if any job failed or was shed.
func (c *client) batch(pairsPath string, poll, timeout time.Duration) error {
	if pairsPath == "" {
		return fmt.Errorf("batch: -pairs is required")
	}
	pairs, err := readPairs(pairsPath)
	if err != nil {
		return err
	}
	var st batchStatus
	if err := c.json("POST", "/api/v1/batch", map[string]any{"pairs": pairs}, &st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch %s: %d jobs submitted %v\n", st.ID, len(st.Jobs), st.Counts)

	deadline := time.Now().Add(timeout) //revtr:wallclock client-side poll timeout, real time by definition
	wait := poll
	for !st.Done {
		if time.Now().After(deadline) { //revtr:wallclock client-side poll timeout, real time by definition
			return fmt.Errorf("batch %s still running after %s: %v", st.ID, timeout, st.Counts)
		}
		time.Sleep(wait)
		if wait < 16*poll {
			wait *= 2 // back off while the batch runs; the server does the waiting
		}
		// Decode into a fresh struct: Unmarshal merges into an existing
		// map, which would leave stale state counts from earlier polls.
		var next batchStatus
		if err := c.json("GET", "/api/v1/batch/"+st.ID, nil, &next); err != nil {
			return err
		}
		st = next
		fmt.Fprintf(os.Stderr, "batch %s: %v\n", st.ID, st.Counts)
	}

	bad := 0
	for _, j := range st.Jobs {
		line := fmt.Sprintf("%4d  %s > %s  %s", j.Index, j.Src, j.Dst, j.State)
		if j.Coalesced {
			line += " (coalesced: zero probes charged)"
		}
		if j.Error != "" {
			line += "  " + j.Error
		}
		fmt.Println(line)
		if j.State == "failed" || j.State == "shed" {
			bad++
		}
	}
	fmt.Fprintf(os.Stderr, "batch %s finished: %v\n", st.ID, st.Counts)
	if bad > 0 {
		return fmt.Errorf("%d of %d jobs did not complete", bad, len(st.Jobs))
	}
	return nil
}

// json sends one request and decodes the JSON response into out.
func (c *client) json(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if c.key != "" {
		req.Header.Set("X-API-Key", c.key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, out)
}

// do sends one request and pretty-prints the JSON response.
func (c *client) do(method, path string, headers map[string]string, body any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if c.key != "" {
		req.Header.Set("X-API-Key", c.key)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else {
		fmt.Println(string(raw))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
