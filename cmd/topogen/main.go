// Command topogen generates a simulated Internet topology and prints its
// statistics — useful for understanding what the experiments run over and
// for tuning topology parameters.
//
//	topogen -ases 1000 -seed 7
//	topogen -ases 1000 -vintage 2016
//	topogen -ases 500 -dump-as 42
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"revtr/internal/netsim/topology"
)

func main() {
	var (
		ases    = flag.Int("ases", 1000, "number of ASes")
		seed    = flag.Int64("seed", 1, "generation seed")
		vintage = flag.String("vintage", "2020", "2016 | 2020 (flattening era)")
		dumpAS  = flag.Int("dump-as", -1, "dump one AS's detail and exit")
	)
	flag.Parse()

	var cfg topology.Config
	switch *vintage {
	case "2020":
		cfg = topology.DefaultConfig(*ases)
	case "2016":
		cfg = topology.Config2016(*ases)
	default:
		fmt.Fprintf(os.Stderr, "unknown vintage %q\n", *vintage)
		os.Exit(2)
	}
	cfg.Seed = *seed
	topo := topology.Generate(cfg)

	if *dumpAS >= 0 {
		if *dumpAS >= len(topo.ASes) {
			fmt.Fprintf(os.Stderr, "AS%d out of range\n", *dumpAS)
			os.Exit(1)
		}
		dump(topo, topology.ASN(*dumpAS))
		return
	}

	fmt.Println(topo.Stats())
	// Degree and cone distributions.
	var degrees, cones []int
	for _, as := range topo.ASes {
		degrees = append(degrees, len(as.Neighbors))
		cones = append(cones, as.ConeSize)
	}
	sort.Ints(degrees)
	sort.Ints(cones)
	q := func(xs []int, p float64) int { return xs[int(p*float64(len(xs)-1))] }
	fmt.Printf("AS degree:    p50=%d p90=%d p99=%d max=%d\n",
		q(degrees, 0.5), q(degrees, 0.9), q(degrees, 0.99), degrees[len(degrees)-1])
	fmt.Printf("customer cone: p50=%d p90=%d p99=%d max=%d\n",
		q(cones, 0.5), q(cones, 0.9), q(cones, 0.99), cones[len(cones)-1])

	// Responsiveness summary.
	ping, rr := 0, 0
	for _, h := range topo.Hosts {
		if h.PingResponsive {
			ping++
		}
		if h.RRResponsive {
			rr++
		}
	}
	fmt.Printf("hosts: %d (ping-responsive %.0f%%, RR-responsive %.0f%%)\n",
		len(topo.Hosts), 100*float64(ping)/float64(len(topo.Hosts)),
		100*float64(rr)/float64(len(topo.Hosts)))
}

func dump(topo *topology.Topology, asn topology.ASN) {
	as := topo.ASes[asn]
	fmt.Printf("AS%d  tier=%s  block=%s  cone=%d  pos=(%.2f,%.2f)\n",
		as.ASN, as.Tier, as.Block, as.ConeSize, as.Pos[0], as.Pos[1])
	fmt.Printf("  spoofing=%v filtersOptions=%v\n", as.AllowsSpoofing, as.FiltersOptions)
	fmt.Printf("  neighbors (%d):\n", len(as.Neighbors))
	for _, nb := range as.Neighbors {
		fmt.Printf("    AS%-6d %-9s links=%d\n", nb.ASN, nb.Rel, len(nb.Link))
	}
	fmt.Printf("  routers (%d):\n", len(as.Routers))
	for _, rid := range as.Routers {
		r := topo.Routers[rid]
		fmt.Printf("    r%-6d role=%d loopback=%-15s stamp=%d ifaces=%d\n",
			r.ID, r.Role, r.Loopback, r.Stamp, len(r.Ifaces))
	}
	fmt.Printf("  prefixes: %v\n", as.Prefixes)
}
