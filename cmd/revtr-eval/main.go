// Command revtr-eval regenerates the paper's tables and figures against
// the simulated Internet.
//
//	revtr-eval -list
//	revtr-eval -run fig5a,table4
//	revtr-eval -run all -scale large
//
// Output is a text rendition of each table/figure with the paper's
// numbers quoted for comparison; see EXPERIMENTS.md for the recorded
// medium-scale results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"revtr/internal/eval"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		run   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale = flag.String("scale", "medium", "small | medium | large")
		seed  = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Paper)
		}
		return
	}

	var s eval.Scale
	switch *scale {
	case "small":
		s = eval.SmallScale()
	case "medium":
		s = eval.MediumScale()
	case "large":
		s = eval.LargeScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	s.Seed = *seed

	var ids []string
	if *run == "all" {
		for _, e := range eval.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	failed := 0
	for _, id := range ids {
		e, ok := eval.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now() //revtr:wallclock operator-facing runtime report, not simulation time
		if err := e.Run(context.Background(), s, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("  [%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds()) //revtr:wallclock operator-facing runtime report, not simulation time
	}
	if failed > 0 {
		os.Exit(1)
	}
}
