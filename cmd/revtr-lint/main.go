// Command revtr-lint runs the repo's static-analysis suite — detpath,
// ctxflow, obsnames, locksafe per package; lockorder, suspendsafe,
// spawnbound module-wide — over the given package patterns and exits
// non-zero on any diagnostic. It is the determinism and concurrency
// gate in `make lint` / `make ci`: introducing a wall-clock read, an
// unseeded random draw, an unsorted map range, a context/metrics/lock
// contract violation, a lock-order cycle, a lock held across a
// suspension point, or an unbounded goroutine fails the build with a
// message naming the invariant.
//
//	revtr-lint ./...
//	revtr-lint -run lockorder,suspendsafe ./internal/sched/
//	revtr-lint -json ./... > findings.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"revtr/internal/lint"
)

// jsonFinding is the -json wire shape, one object per finding.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Directive string `json:"directive,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message/directive)")
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: revtr-lint [-json] [-run analyzers] [packages]\n\nPer-package analyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nModule analyzers:\n")
		for _, a := range lint.FlowAnalyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var only []string
	if *runFilter != "" {
		for _, n := range strings.Split(*runFilter, ",") {
			if n = strings.TrimSpace(n); n != "" {
				only = append(only, n)
			}
		}
	}
	findings, err := lint.RunSelected(".", only, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revtr-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:      f.Position.Filename,
				Line:      f.Position.Line,
				Col:       f.Position.Column,
				Analyzer:  f.Analyzer,
				Message:   f.Message,
				Directive: f.Directive,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "revtr-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "revtr-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
