// Command revtr-lint runs the repo's static-analysis suite — detpath,
// ctxflow, obsnames, locksafe — over the given package patterns and
// exits non-zero on any diagnostic. It is the determinism gate in
// `make lint` / `make ci`: introducing a wall-clock read, an unseeded
// random draw, an unsorted map range, or a context/metrics/lock
// contract violation fails the build with a message naming the
// invariant.
//
//	revtr-lint ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"revtr/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: revtr-lint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revtr-lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "revtr-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
