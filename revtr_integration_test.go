package revtr

import (
	"context"

	"testing"

	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

func buildSmall(t testing.TB) *Deployment {
	t.Helper()
	cfg := DefaultConfig(300)
	cfg.Seed = 3
	cfg.Topology.Seed = 3
	return Build(cfg)
}

// routersOf maps measured hop addresses to ground-truth routers,
// dropping unmappable hops (private addresses, host addresses).
func routersOf(d *Deployment, addrs []ipv4.Addr) []topology.RouterID {
	var out []topology.RouterID
	for _, a := range addrs {
		if r, ok := d.Topo.RouterOf(a); ok {
			if len(out) == 0 || out[len(out)-1] != r {
				out = append(out, r)
			}
		}
	}
	return out
}

func TestRevtr20EndToEnd(t *testing.T) {
	d := buildSmall(t)
	src := d.NewSource(d.PickSourceHost(0))
	eng := d.Engine(core.Revtr20Options())

	dests := d.OnePerPrefix()
	completed, attempted := 0, 0
	exactAS, matched := 0, 0
	for i := 0; i < len(dests) && attempted < 120; i += 3 {
		dst := dests[i]
		if dst.AS == src.Agent.AS {
			continue
		}
		attempted++
		res := eng.MeasureReverse(context.Background(), src, dst.Addr)
		if res.Status != core.StatusComplete {
			continue
		}
		completed++
		if res.Hops[0].Addr != dst.Addr {
			t.Fatalf("path does not start at destination: %v", res.Addrs())
		}
		if res.Hops[len(res.Hops)-1].Addr != src.Agent.Addr {
			t.Fatalf("path does not end at source: %v", res.Addrs())
		}
		if res.InterdomainAssumed > 0 {
			t.Fatalf("revtr 2.0 made an interdomain symmetry assumption")
		}
		// AS-level accuracy vs the ground-truth reverse path.
		truth := d.TrueReversePath(dst, src.Agent.Addr)
		if truth == nil {
			continue
		}
		matched++
		trueAS := d.Fabric.ASPath(truth)
		gotAS := asPathTruth(d, res.Addrs())
		if equalASPaths(gotAS, trueAS) {
			exactAS++
		}
	}
	if attempted == 0 {
		t.Fatal("no destinations attempted")
	}
	frac := float64(completed) / float64(attempted)
	t.Logf("completed %d/%d (%.0f%%), exact AS match %d/%d", completed, attempted, 100*frac, exactAS, matched)
	if frac < 0.30 {
		t.Errorf("completion rate %.2f too low", frac)
	}
	if matched > 10 && float64(exactAS)/float64(matched) < 0.55 {
		t.Errorf("AS-level exact-match rate %.2f too low", float64(exactAS)/float64(matched))
	}
}

// asPathTruth maps a measured address path to ASes using ground truth.
func asPathTruth(d *Deployment, addrs []ipv4.Addr) []topology.ASN {
	var out []topology.ASN
	for _, a := range addrs {
		asn, ok := d.TruthMapper.ASOf(a)
		if !ok {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}

func equalASPaths(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRevtr10CompletesEverythingItCan(t *testing.T) {
	d := buildSmall(t)
	src := d.NewSource(d.PickSourceHost(1))
	eng := d.Engine(core.Revtr10Options())
	dests := d.OnePerPrefix()
	aborted := 0
	n := 0
	for i := 0; i < len(dests) && n < 40; i += 7 {
		if dests[i].AS == src.Agent.AS {
			continue
		}
		n++
		res := eng.MeasureReverse(context.Background(), src, dests[i].Addr)
		if res.Status == core.StatusAborted {
			aborted++
		}
	}
	if aborted > 0 {
		t.Errorf("revtr 1.0 aborted %d measurements; it must always assume symmetry", aborted)
	}
}

func TestRevtr20FewerProbesThan10(t *testing.T) {
	d := buildSmall(t)
	srcHost := d.PickSourceHost(2)
	src := d.NewSource(srcHost)
	e20 := d.Engine(core.Revtr20Options())
	e10 := d.Engine(core.Revtr10Options())

	dests := d.OnePerPrefix()
	var p20, p10 uint64
	n := 0
	for i := 0; i < len(dests) && n < 50; i += 5 {
		if dests[i].AS == src.Agent.AS {
			continue
		}
		n++
		r20 := e20.MeasureReverse(context.Background(), src, dests[i].Addr)
		r10 := e10.MeasureReverse(context.Background(), src, dests[i].Addr)
		p20 += r20.Probes.Total()
		p10 += r10.Probes.Total()
	}
	t.Logf("probes: revtr2.0=%d revtr1.0=%d", p20, p10)
	if p20 >= p10 {
		t.Errorf("revtr 2.0 used more probes (%d) than revtr 1.0 (%d)", p20, p10)
	}
}

func TestCacheReducesProbes(t *testing.T) {
	d := buildSmall(t)
	src := d.NewSource(d.PickSourceHost(3))
	eng := d.Engine(core.Revtr20Options())
	dst := d.OnePerPrefix()[10]
	if dst.AS == src.Agent.AS {
		dst = d.OnePerPrefix()[11]
	}
	r1 := eng.MeasureReverse(context.Background(), src, dst.Addr)
	r2 := eng.MeasureReverse(context.Background(), src, dst.Addr)
	if r2.Probes.RR+r2.Probes.SpoofRR > r1.Probes.RR+r1.Probes.SpoofRR {
		t.Errorf("second measurement used more RR probes (%d vs %d)",
			r2.Probes.RR+r2.Probes.SpoofRR, r1.Probes.RR+r1.Probes.SpoofRR)
	}
}

func TestAbortedMeansInterdomain(t *testing.T) {
	d := buildSmall(t)
	src := d.NewSource(d.PickSourceHost(4))
	eng := d.Engine(core.Revtr20Options())
	dests := d.OnePerPrefix()
	sawAbort := false
	n := 0
	for i := 0; i < len(dests) && n < 150 && !sawAbort; i += 2 {
		if dests[i].AS == src.Agent.AS {
			continue
		}
		n++
		res := eng.MeasureReverse(context.Background(), src, dests[i].Addr)
		if res.Status == core.StatusAborted {
			sawAbort = true
			if res.InterdomainAssumed > 0 {
				t.Error("aborted result should not contain interdomain assumptions")
			}
		}
	}
	t.Logf("saw abort: %v (over %d attempts)", sawAbort, n)
}

func TestSpoofedBatchesCostTenSeconds(t *testing.T) {
	d := buildSmall(t)
	src := d.NewSource(d.PickSourceHost(5))
	eng := d.Engine(core.Revtr20Options())
	dests := d.OnePerPrefix()
	for i := 0; i < len(dests) && i < 200; i++ {
		if dests[i].AS == src.Agent.AS {
			continue
		}
		res := eng.MeasureReverse(context.Background(), src, dests[i].Addr)
		if res.SpoofBatches > 0 {
			if res.DurationUS < int64(res.SpoofBatches)*10_000_000 {
				t.Fatalf("duration %dus < batches %d × 10s", res.DurationUS, res.SpoofBatches)
			}
			return
		}
	}
	t.Skip("no measurement needed spoofed batches")
}
