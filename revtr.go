// Package revtr is a from-scratch reproduction of "Internet Scale Reverse
// Traceroute" (Vermeulen et al., IMC 2022): the revtr 2.0 system, the
// revtr 1.0 baseline it is evaluated against, and the simulated Internet
// both run over.
//
// A Deployment bundles everything the real service operates: a generated
// Internet topology with BGP routing and a wire-format data plane,
// M-Lab-style spoofing vantage points, RIPE-Atlas-style probes, alias and
// IP-to-AS datasets, the background services (traceroute atlas with
// RR-alias probing, ingress surveys), and the Reverse Traceroute engine.
//
//	dep := revtr.Build(revtr.DefaultConfig(500))
//	src := dep.NewSource(dep.PickSourceHost(0))
//	eng := dep.Engine(core.Revtr20Options())
//	res := eng.MeasureReverse(context.Background(), src, dst)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every table and figure.
package revtr

import (
	"fmt"
	"math/rand"

	"revtr/internal/alias"
	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
	"revtr/internal/probe"
	"revtr/internal/vantage"
)

// Config sizes a deployment.
type Config struct {
	// Topology generates the simulated Internet.
	Topology topology.Config
	// Sites is the number of spoofing vantage point sites (146 M-Lab
	// sites in the paper's deployment).
	Sites int
	// Vintage controls site placement (2020 colos vs 2016 edges).
	Vintage vantage.Vintage
	// Probes is the number of RIPE-Atlas-style probes; ProbeCredits the
	// per-probe traceroute budget.
	Probes       int
	ProbeCredits int
	// AtlasSize is the number of traceroutes per source's atlas (1000 in
	// the paper).
	AtlasSize int
	// AliasCoverage is the fraction of routers the MIDAR-like dataset
	// resolves.
	AliasCoverage float64
	// SkipSurvey skips the ingress survey (callers that never issue
	// spoofed RR probes, or that run their own survey).
	SkipSurvey bool
	// ProbeWorkers bounds the deployment's shared probe pool (0 =
	// GOMAXPROCS): the number of probes in flight at once across all
	// engines and measurements.
	ProbeWorkers int
	Seed         int64
}

// DefaultConfig returns a deployment sized for n ASes.
func DefaultConfig(n int) Config {
	return Config{
		Topology:      topology.DefaultConfig(n),
		Sites:         clamp(n/20, 8, 146),
		Vintage:       vantage.Vintage2020,
		Probes:        clamp(n/2, 20, 10000),
		ProbeCredits:  100000,
		AtlasSize:     clamp(n/6, 10, 1000),
		AliasCoverage: 0.35,
		Seed:          1,
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Deployment is a fully-assembled simulated Reverse Traceroute system.
type Deployment struct {
	Cfg     Config
	Topo    *topology.Topology
	Routing *bgp.Routing
	Fabric  *fabric.Fabric
	// Clock is the deployment-wide virtual clock, shared by the serial
	// Prober (background services, eval) and the concurrent Pool.
	Clock *measure.Clock
	// Prober issues probes serially — background services and eval code.
	Prober *measure.Prober
	// Pool executes measurement probe batches concurrently; every engine
	// built from this deployment shares it.
	Pool *probe.Pool

	Sites      []vantage.Site
	SiteAgents []measure.Agent
	Probes     []*vantage.Probe

	Alias       *alias.Combined
	Mapper      ip2as.Mapper // the production (imperfect) mapper
	TruthMapper ip2as.Truth  // ground truth, for evaluation only

	AtlasSvc   *atlas.Service
	IngressSvc *ingress.Service

	// BackgroundProbes snapshots the probe budget consumed by offline
	// work (survey + atlas building), excluded from per-measurement
	// accounting.
	BackgroundProbes measure.Counters

	rng *rand.Rand
}

// Build generates the topology and assembles every subsystem. With
// cfg.SkipSurvey false this includes the ingress survey over all routed
// prefixes — the dominant setup cost.
func Build(cfg Config) *Deployment {
	topo := topology.Generate(cfg.Topology)
	routing := bgp.NewRouting(topo, bgp.DefaultTieBreak(cfg.Seed), 128)
	fab := fabric.New(topo, routing, cfg.Seed)
	clock := measure.NewClock()
	prober := measure.NewProberWithClock(fab, clock)
	pool := probe.New(fab, clock, cfg.ProbeWorkers)

	sites := vantage.PlaceSites(topo, cfg.Sites, cfg.Vintage, cfg.Seed)
	agents := make([]measure.Agent, len(sites))
	for i, s := range sites {
		agents[i] = s.Agent
	}
	probes := vantage.PlaceProbes(topo, cfg.Probes, cfg.ProbeCredits, cfg.Seed)

	res := &alias.Combined{
		Midar: alias.NewMidar(topo, cfg.AliasCoverage, cfg.Seed),
		SNMP:  alias.NewSNMP(topo, alias.SNMPConfig{}, cfg.Seed),
	}

	d := &Deployment{
		Cfg:        cfg,
		Topo:       topo,
		Routing:    routing,
		Fabric:     fab,
		Clock:      clock,
		Prober:     prober,
		Pool:       pool,
		Sites:      sites,
		SiteAgents: agents,
		Probes:     probes,
		Alias:      res,
		// The production mapper models Arnold et al.'s method (EuroIX >
		// PeeringDB > RouteViews > Whois, Appx B.2): origin-based with
		// most border interfaces correctly attributed through the IXP
		// and peering databases. Pure origin mapping (ip2as.Origin) and
		// a near-perfect bdrmapit are compared in the appxB2 ablation.
		Mapper:      ip2as.NewBdrmap(topo, 0.90, 0.005, cfg.Seed+7),
		TruthMapper: ip2as.Truth{Topo: topo},
		rng:         rand.New(rand.NewSource(cfg.Seed + 99)),
	}
	d.IngressSvc = ingress.NewService(prober, agents, ingress.AllHeuristics, cfg.Seed)
	// Background RR-atlas probes spoof from the vantage points the
	// ingress survey found closest to each hop (falling back to the raw
	// site list before the survey has run).
	pick := func(target ipv4.Addr) []measure.Agent {
		pfx, ok := topo.BGPPrefixOf(target)
		if !ok {
			return agents
		}
		plan := d.IngressSvc.PlanFor(pfx, ingress.SelIngress)
		out := make([]measure.Agent, 0, 3)
		for _, si := range plan.Order {
			out = append(out, agents[si])
			if len(out) == 3 {
				break
			}
		}
		return out
	}
	d.AtlasSvc = atlas.NewService(prober, probes, pick, res, cfg.AtlasSize, true, cfg.Seed)
	if !cfg.SkipSurvey {
		d.RunSurvey()
	}
	d.BackgroundProbes = prober.Count
	return d
}

// RunSurvey (re-)runs the weekly ingress survey over every routed prefix
// (§4.3).
func (d *Deployment) RunSurvey() {
	d.IngressSvc.Survey(d.Topo.AllBGPPrefixes(), d.SurveyDestinations)
}

// SurveyDestinations picks up to two probe targets inside a prefix:
// responsive hosts for announced space, router addresses for
// infrastructure space.
func (d *Deployment) SurveyDestinations(pfx ipv4.Prefix) []ipv4.Addr {
	var out []ipv4.Addr
	if pfx.Bits == 24 {
		asn, ok := d.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		for _, hid := range d.Topo.ASes[asn].Hosts {
			h := &d.Topo.Hosts[hid]
			if pfx.Contains(h.Addr) && h.PingResponsive {
				out = append(out, h.Addr)
				if len(out) == 2 {
					return out
				}
			}
		}
		return out
	}
	// Infrastructure prefix: two responsive router loopbacks.
	asn, ok := d.Topo.BlockAS(pfx.Addr)
	if !ok {
		return nil
	}
	for _, rid := range d.Topo.ASes[asn].Routers {
		r := d.Topo.Routers[rid]
		if r.RespondsToPing && r.RespondsToOptions {
			out = append(out, r.Loopback)
			if len(out) == 2 {
				return out
			}
		}
	}
	return out
}

// NewSource registers a host as a Reverse Traceroute source: it builds
// the source's traceroute atlas including the §4.2 RR-alias background
// probes — the Appendix A bootstrap.
func (d *Deployment) NewSource(h *topology.Host) core.Source {
	a := measure.AgentFromHost(d.Topo, h)
	return core.Source{Agent: a, Atlas: d.AtlasSvc.BuildFor(a)}
}

// SourceFromAgent registers an arbitrary agent (e.g. an anycast site) as
// a source.
func (d *Deployment) SourceFromAgent(a measure.Agent) core.Source {
	return core.Source{Agent: a, Atlas: d.AtlasSvc.BuildFor(a)}
}

// Engine builds a Reverse Traceroute engine with the given options, using
// the deployment's services and an Ark-style adjacency corpus when
// Timestamp is enabled.
func (d *Deployment) Engine(opts core.Options) *core.Engine {
	var adj core.AdjacencyProvider
	if opts.UseTimestamp {
		adj = d.BuildAdjacencies(200)
	}
	return d.EngineWithAdjacencies(opts, adj)
}

// EngineWithAdjacencies is Engine with an explicit adjacency provider
// (the Appendix D.1 oracle experiments use this).
func (d *Deployment) EngineWithAdjacencies(opts core.Options, adj core.AdjacencyProvider) *core.Engine {
	return core.NewEngine(d.Fabric, d.Pool, d.IngressSvc, d.SiteAgents, d.Alias, d.Mapper, adj, opts)
}

// BuildAdjacencies assembles a traceroute-corpus adjacency dataset from n
// random probe→host traceroutes (the "links found in the Ark traceroutes
// from the two previous weeks", §5.2.1).
func (d *Deployment) BuildAdjacencies(n int) *core.TracerouteAdjacencies {
	adj := core.NewTracerouteAdjacencies()
	hosts := d.ResponsiveHosts()
	if len(hosts) == 0 || len(d.Probes) == 0 {
		return adj
	}
	for i := 0; i < n; i++ {
		p := d.Probes[d.rng.Intn(len(d.Probes))]
		h := hosts[d.rng.Intn(len(hosts))]
		if !p.Spend(1) {
			continue
		}
		adj.Ingest(d.Prober.Traceroute(p.Agent, h.Addr))
	}
	return adj
}

// ResponsiveHosts lists all ping-responsive hosts (the ISI hitlist
// analogue).
func (d *Deployment) ResponsiveHosts() []*topology.Host {
	var out []*topology.Host
	for i := range d.Topo.Hosts {
		if d.Topo.Hosts[i].PingResponsive {
			out = append(out, &d.Topo.Hosts[i])
		}
	}
	return out
}

// PickSourceHost returns the i'th host suitable as a source (ping- and
// RR-responsive, in a non-filtering AS).
func (d *Deployment) PickSourceHost(i int) *topology.Host {
	for hi := range d.Topo.Hosts {
		h := &d.Topo.Hosts[hi]
		if h.PingResponsive && h.RRResponsive && !d.Topo.ASes[h.AS].FiltersOptions {
			if i == 0 {
				return h
			}
			i--
		}
	}
	panic(fmt.Sprintf("revtr: no suitable source host at index %d", i))
}

// OnePerPrefix picks one ping-responsive host per announced prefix — the
// paper's large-scale destination set ("a ping-responsive host in each
// routed BGP prefix", §5.1).
func (d *Deployment) OnePerPrefix() []*topology.Host {
	seen := map[ipv4.Addr]bool{}
	var out []*topology.Host
	for i := range d.Topo.Hosts {
		h := &d.Topo.Hosts[i]
		if !h.PingResponsive {
			continue
		}
		key := h.Addr.Mask(24)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, h)
	}
	return out
}

// FirstHostPerPrefix returns one host per announced prefix with no
// responsiveness filtering (the raw survey population of Table 6).
func (d *Deployment) FirstHostPerPrefix() []*topology.Host {
	seen := map[ipv4.Addr]bool{}
	var out []*topology.Host
	for i := range d.Topo.Hosts {
		h := &d.Topo.Hosts[i]
		key := h.Addr.Mask(24)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, h)
	}
	return out
}

// TrueReversePath returns the ground-truth router-level path from dst
// back to srcAddr (evaluation only).
func (d *Deployment) TrueReversePath(dst *topology.Host, srcAddr ipv4.Addr) []topology.RouterID {
	return d.Fabric.ForwardRouterPath(dst.Router, srcAddr, dst.Addr, 0)
}
